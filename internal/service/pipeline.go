package service

import (
	"context"
	"fmt"
	"sync"

	"chaseci/internal/api"
	"chaseci/internal/connect"
	"chaseci/internal/dataset"
	"chaseci/internal/ffn"
	"chaseci/internal/merra"
	"chaseci/internal/workflow"
)

// The pipeline job: a multi-timestep synthetic volume is cut into time
// slabs, and every slab flows through the three analysis stages the case
// study otherwise runs as separate jobs — IVT derivation, FFN flood-fill
// segmentation, CONNECT labelling — on a workflow.RunStream. While slab t
// is being segmented, slab t+1's IVT is derived and slab t-1's mask is
// labelled, so the two cheaper stages hide behind the expensive one on
// multi-core. Each slab is an independent analysis unit (its own
// normalization, seeding, flood, and labelling), so the aggregate result is
// identical in overlapped and sequential mode at every buffer size.
//
// Stage handoff is zero-copy in memory (the hot path PR 3 optimized):
// each slab's field is dropped as soon as the next stage consumes it. In
// ref result mode the segment stage additionally writes every mask into
// the content-addressed store (pinned, then promoted with Keep by the
// results loop), so each slab's mask is one GET /v1/datasets/{id} away in
// the result — the data plane's move-the-ref-not-the-data discipline at
// the job boundary, without re-encoding slabs the job itself consumes.

// pipeSlab is the item flowing through the pipeline stages.
type pipeSlab struct {
	start, steps int         // generator step range
	raw          *ffn.Volume // IVT output; released after segment
	mask         *ffn.Volume // segment output; released after label
	maskRef      string      // ref mode: the stored mask's dataset id
	res          api.PipelineSlabResult
}

// pipeRefs tracks the mask datasets a ref-mode pipeline run stores. Each
// track corresponds to one pin taken atomically inside PutPinned
// (identical slabs content-collide into one id with a tracker count).
// Completed slabs' masks are promoted with Keep and stay; whatever a
// cancellation orphans is deleted by the final sweep — but only ids this
// run actually created (created=true), and Manager-level Keep/pin
// deferral ensures a content collision with a user upload, a kept result,
// or a concurrent identical job never destroys data someone else wants.
type refEntry struct {
	count   int
	created bool
}

type pipeRefs struct {
	ds *dataset.Manager

	mu    sync.Mutex
	masks map[string]*refEntry
}

// track records a handoff id whose pin the producing stage already took
// atomically inside PutPinned (a separate Pin here would leave a window
// for a concurrent job's release to delete a content-colliding id first).
// Each track is matched by one Unpin in releaseOne / the final sweep.
func (p *pipeRefs) track(set map[string]*refEntry, id string, created bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	e := set[id]
	if e == nil {
		e = &refEntry{}
		set[id] = e
	}
	e.count++
	// created sticks: a later idempotent re-put must not demote it.
	e.created = e.created || created
}

// release runs after the results loop has Keep-promoted every completed
// slab's mask: remaining claims are unpinned and created-but-orphaned
// masks (from cancelled slabs) are deleted — Delete no-ops on kept ids,
// so promoted results survive.
func (p *pipeRefs) release() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for id, e := range p.masks {
		if e.created {
			p.ds.Delete(id)
		}
		for ; e.count > 0; e.count-- {
			p.ds.Unpin(id)
		}
		delete(p.masks, id)
	}
}

// pipeProgress aggregates per-stage completion counts into the single
// JobStatus progress channel: done is stage-completions across all stages,
// and the stage string carries the per-stage breakdown the NDJSON stream
// shows live. The count-increment and Progress store happen under one
// mutex so concurrent stage goroutines cannot publish a stale (smaller)
// snapshot after a newer one — the stream stays monotonic and consistent.
type pipeProgress struct {
	jc    *JobContext
	slabs int

	mu   sync.Mutex
	done [3]int64
}

func (p *pipeProgress) advance(stage, _ int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done[stage]++
	i, s, l := p.done[0], p.done[1], p.done[2]
	p.jc.Progress(i+s+l, int64(3*p.slabs),
		fmt.Sprintf("ivt %d/%d · segment %d/%d · label %d/%d", i, p.slabs, s, p.slabs, l, p.slabs))
}

// PipelineHandler executes a pipeline job. A cancelled run reports the
// slabs that completed all three stages alongside ctx.Err().
func PipelineHandler(jc *JobContext) (any, error) {
	spec := jc.Request().Pipeline
	sy := spec.Synth
	slabSteps := spec.SlabSteps
	if slabSteps <= 0 || slabSteps > sy.Steps {
		slabSteps = sy.Steps
	}
	slabs := (sy.Steps + slabSteps - 1) / slabSteps

	cfg := netConfig(spec.Net)
	net, err := ffn.NewNetwork(cfg, spec.NetSeed)
	if err != nil {
		return nil, err
	}
	stride := spec.SeedStride
	if stride == [3]int{} {
		stride = cfg.FOV
	}
	conn := connect.Conn26
	if spec.Connectivity == 6 {
		conn = connect.Conn6
	}
	g := merra.Grid{NLon: sy.NLon, NLat: sy.NLat, NLev: sy.NLev}
	gen := merra.NewGenerator(g, sy.Seed)
	levels := merra.PressureLevels(g.NLev)
	hw := g.NLon * g.NLat

	ds := jc.Datasets()
	owner := jc.Owner()
	keepMasks := jc.RefMode()
	refs := &pipeRefs{ds: ds, masks: make(map[string]*refEntry)}
	prog := &pipeProgress{jc: jc, slabs: slabs}
	prog.jc.Progress(0, int64(3*slabs), "pipeline")

	stages := []workflow.StreamStage{
		{Name: "ivt", Run: func(ctx context.Context, i int, _ any) (any, error) {
			start := sy.Start + i*slabSteps
			steps := slabSteps
			if rem := sy.Steps - i*slabSteps; steps > rem {
				steps = rem
			}
			sl := &pipeSlab{start: start, steps: steps}
			sl.res = api.PipelineSlabResult{Slab: i, StartStep: start, Steps: steps}
			vol, err := merra.IVTVolumeCtx(ctx, gen, levels, start, steps, nil)
			if err != nil {
				return nil, err
			}
			var sum float64
			for _, v := range vol.Data {
				sum += float64(v)
				if float64(v) > sl.res.IVTMax {
					sl.res.IVTMax = float64(v)
				}
			}
			sl.res.IVTMean = sum / float64(steps*hw)
			sl.raw = &ffn.Volume{D: steps, H: g.NLat, W: g.NLon, Data: vol.Data}
			return sl, nil
		}},
		{Name: "segment", Run: func(ctx context.Context, _ int, item any) (any, error) {
			sl := item.(*pipeSlab)
			// Seeds come from the raw field, before normalization — the
			// same order of operations as SegmentHandler.
			seeds := ffn.GridSeeds(sl.raw, cfg.FOV, stride, spec.Threshold)
			image := sl.raw.Normalize()
			mask, stats, err := net.SegmentCtx(ctx, image, seeds, 0, nil)
			if err != nil {
				return nil, err
			}
			sl.mask = mask
			sl.raw = nil // the slab's image is dead weight past this stage
			if keepMasks {
				// Ref mode publishes every slab's mask content-addressed;
				// the pin lands atomically inside the put, and the results
				// loop promotes completed slabs with Keep.
				enc, err := dataset.EncodeMask(mask.D, mask.H, mask.W, mask.Data)
				if err != nil {
					return nil, err
				}
				info, created, err := ds.PutPinned(enc, owner)
				if err != nil {
					return nil, err
				}
				sl.maskRef = info.ID
				refs.track(refs.masks, info.ID, created)
			}
			sl.res.SegSteps = stats.Steps
			sl.res.SegMoves = stats.Moves
			sl.res.SeedsUsed = stats.SeedsUsed
			sl.res.MaskVoxels = stats.MaskVoxels
			return sl, nil
		}},
		{Name: "label", Run: func(ctx context.Context, _ int, item any) (any, error) {
			sl := item.(*pipeSlab)
			result, err := connect.LabelCtx(ctx, connect.FromMask(sl.mask.D, sl.mask.H, sl.mask.W, sl.mask.Data), conn, spec.MinVoxels, nil)
			if err != nil {
				return nil, err
			}
			stats := connect.Summarize(result)
			sl.mask = nil
			sl.res.Objects = stats.Objects
			sl.res.ObjectVoxels = stats.TotalVoxels
			sl.res.MaxDuration = stats.MaxDuration
			return sl, nil
		}},
	}

	results, streamErr := workflow.RunStream(jc.Ctx(), stages, slabs, workflow.StreamOptions{
		Sequential: spec.Sequential,
		Buffer:     spec.Buffer,
		OnAdvance:  prog.advance,
	})

	res := api.PipelineResult{Slabs: slabs, Sequential: spec.Sequential}
	for _, item := range results {
		if item == nil {
			continue
		}
		sl := item.(*pipeSlab)
		if keepMasks {
			// Promote while still pinned, so no concurrent deleter can
			// race the mask away between label and here.
			ds.Keep(sl.maskRef)
			sl.res.MaskRef = sl.maskRef
		}
		res.SlabsDone++
		res.Steps += sl.res.Steps
		res.IVTMean += sl.res.IVTMean * float64(sl.res.Steps)
		if sl.res.IVTMax > res.IVTMax {
			res.IVTMax = sl.res.IVTMax
		}
		res.SegSteps += sl.res.SegSteps
		res.SegMoves += sl.res.SegMoves
		res.SeedsUsed += sl.res.SeedsUsed
		res.MaskVoxels += sl.res.MaskVoxels
		res.VoxelsTotal += sl.res.Steps * hw
		res.Objects += sl.res.Objects
		res.ObjectVoxels += sl.res.ObjectVoxels
		if sl.res.MaxDuration > res.MaxDuration {
			res.MaxDuration = sl.res.MaxDuration
		}
		res.PerSlab = append(res.PerSlab, sl.res)
	}
	if res.Steps > 0 {
		res.IVTMean /= float64(res.Steps)
	}
	refs.release()
	return res, streamErr
}
