package tensor

import (
	"fmt"
	"math"
	"testing"

	"chaseci/internal/parallel"
	"chaseci/internal/sim"
)

// conv3dScalar is the original single-goroutine reference kernel, kept
// verbatim as the ground truth the parallel Into kernels must reproduce.
func conv3dScalar(in, weight *Tensor, bias []float32) *Tensor {
	cin, d, h, w := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	cout := weight.Shape[0]
	kd, kh, kw := weight.Shape[2], weight.Shape[3], weight.Shape[4]
	pd, ph, pw := kd/2, kh/2, kw/2
	out := New(cout, d, h, w)
	for oc := 0; oc < cout; oc++ {
		var b float32
		if bias != nil {
			b = bias[oc]
		}
		for z := 0; z < d; z++ {
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					sum := b
					for ic := 0; ic < cin; ic++ {
						for dz := 0; dz < kd; dz++ {
							iz := z + dz - pd
							if iz < 0 || iz >= d {
								continue
							}
							for dy := 0; dy < kh; dy++ {
								iy := y + dy - ph
								if iy < 0 || iy >= h {
									continue
								}
								wBase := (((oc*cin+ic)*kd+dz)*kh + dy) * kw
								iBase := ((ic*d+iz)*h + iy) * w
								for dx := 0; dx < kw; dx++ {
									ix := x + dx - pw
									if ix < 0 || ix >= w {
										continue
									}
									sum += weight.Data[wBase+dx] * in.Data[iBase+ix]
								}
							}
						}
					}
					out.Data[vIdx(out.Shape, oc, z, y, x)] = sum
				}
			}
		}
	}
	return out
}

// conv3dBackwardScalar is the original reference backward pass.
func conv3dBackwardScalar(in, weight, gradOut *Tensor) (gradIn, gradW *Tensor, gradB []float32) {
	cin, d, h, w := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	cout := weight.Shape[0]
	kd, kh, kw := weight.Shape[2], weight.Shape[3], weight.Shape[4]
	pd, ph, pw := kd/2, kh/2, kw/2
	gradIn = New(cin, d, h, w)
	gradW = New(cout, cin, kd, kh, kw)
	gradB = make([]float32, cout)
	for oc := 0; oc < cout; oc++ {
		for z := 0; z < d; z++ {
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					g := gradOut.Data[vIdx(gradOut.Shape, oc, z, y, x)]
					if g == 0 {
						continue
					}
					gradB[oc] += g
					for ic := 0; ic < cin; ic++ {
						for dz := 0; dz < kd; dz++ {
							iz := z + dz - pd
							if iz < 0 || iz >= d {
								continue
							}
							for dy := 0; dy < kh; dy++ {
								iy := y + dy - ph
								if iy < 0 || iy >= h {
									continue
								}
								wBase := (((oc*cin+ic)*kd+dz)*kh + dy) * kw
								iBase := ((ic*d+iz)*h + iy) * w
								for dx := 0; dx < kw; dx++ {
									ix := x + dx - pw
									if ix < 0 || ix >= w {
										continue
									}
									gradW.Data[wBase+dx] += g * in.Data[iBase+ix]
									gradIn.Data[iBase+ix] += g * weight.Data[wBase+dx]
								}
							}
						}
					}
				}
			}
		}
	}
	return gradIn, gradW, gradB
}

type convCase struct {
	cin, d, h, w int
	cout         int
	kd, kh, kw   int
}

var convCases = []convCase{
	{1, 1, 1, 1, 1, 1, 1, 1},
	{1, 3, 5, 7, 2, 3, 3, 3},
	{2, 3, 4, 5, 3, 3, 3, 3}, // even dims
	{3, 2, 7, 6, 2, 3, 1, 5}, // mixed kernel
	{2, 4, 6, 8, 4, 2, 2, 2}, // even kernel
	{3, 4, 8, 9, 5, 3, 3, 3}, // large enough to shard
	{2, 5, 9, 9, 1, 5, 3, 3},
}

func randTensor(rng *sim.RNG, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64())
	}
	return t
}

// TestConv3DIntoMatchesScalar sweeps odd/even shapes and worker counts and
// requires bit-exact agreement with the scalar reference kernel.
func TestConv3DIntoMatchesScalar(t *testing.T) {
	rng := sim.NewRNG(7)
	for _, tc := range convCases {
		in := randTensor(rng, tc.cin, tc.d, tc.h, tc.w)
		weight := randTensor(rng, tc.cout, tc.cin, tc.kd, tc.kh, tc.kw)
		bias := make([]float32, tc.cout)
		for i := range bias {
			bias[i] = float32(rng.NormFloat64())
		}
		want := conv3dScalar(in, weight, bias)
		for _, workers := range []int{1, 2, 8} {
			t.Run(fmt.Sprintf("%+v/workers=%d", tc, workers), func(t *testing.T) {
				prev := parallel.SetWorkers(workers)
				defer parallel.SetWorkers(prev)
				out := New(tc.cout, tc.d, tc.h, tc.w)
				out.Fill(999) // stale garbage must be overwritten
				Conv3DInto(out, in, weight, bias)
				for i := range want.Data {
					if out.Data[i] != want.Data[i] {
						t.Fatalf("element %d: got %v, want %v (not bit-exact)", i, out.Data[i], want.Data[i])
					}
				}
				// Nil bias path.
				outNB := Conv3D(in, weight, nil)
				wantNB := conv3dScalar(in, weight, nil)
				for i := range wantNB.Data {
					if outNB.Data[i] != wantNB.Data[i] {
						t.Fatalf("nil-bias element %d: got %v, want %v", i, outNB.Data[i], wantNB.Data[i])
					}
				}
			})
		}
	}
}

// TestConv3DBackwardIntoMatchesScalar requires gradW and gradB to be
// bit-exact at every worker count (they are owned per output channel) and
// gradIn to be bit-exact serially and within roundoff when the reduction
// over output-channel shards reassociates additions.
func TestConv3DBackwardIntoMatchesScalar(t *testing.T) {
	rng := sim.NewRNG(11)
	for _, tc := range convCases {
		in := randTensor(rng, tc.cin, tc.d, tc.h, tc.w)
		weight := randTensor(rng, tc.cout, tc.cin, tc.kd, tc.kh, tc.kw)
		gradOut := randTensor(rng, tc.cout, tc.d, tc.h, tc.w)
		wantIn, wantW, wantB := conv3dBackwardScalar(in, weight, gradOut)
		for _, workers := range []int{1, 2, 8} {
			t.Run(fmt.Sprintf("%+v/workers=%d", tc, workers), func(t *testing.T) {
				prev := parallel.SetWorkers(workers)
				defer parallel.SetWorkers(prev)
				gradIn, gradW, gradB := Conv3DBackward(in, weight, gradOut)
				for i := range wantW.Data {
					if gradW.Data[i] != wantW.Data[i] {
						t.Fatalf("gradW[%d]: got %v, want %v (not bit-exact)", i, gradW.Data[i], wantW.Data[i])
					}
				}
				for i := range wantB {
					if gradB[i] != wantB[i] {
						t.Fatalf("gradB[%d]: got %v, want %v (not bit-exact)", i, gradB[i], wantB[i])
					}
				}
				for i := range wantIn.Data {
					got, want := float64(gradIn.Data[i]), float64(wantIn.Data[i])
					if workers == 1 {
						if got != want {
							t.Fatalf("gradIn[%d]: got %v, want %v (serial must be bit-exact)", i, got, want)
						}
						continue
					}
					if diff := math.Abs(got - want); diff > 1e-5*(1+math.Abs(want)) {
						t.Fatalf("gradIn[%d]: got %v, want %v (|diff|=%g beyond reduction roundoff)", i, got, want, diff)
					}
				}
			})
		}
	}
}

// TestConv3DIntoReusesBuffer guards the allocation contract: repeated
// Conv3DInto calls into the same output must not allocate.
func TestConv3DIntoReusesBuffer(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector; alloc pins run in the non-race job")
	}
	rng := sim.NewRNG(3)
	in := randTensor(rng, 4, 3, 7, 7)
	weight := randTensor(rng, 4, 4, 3, 3, 3)
	bias := make([]float32, 4)
	out := New(4, 3, 7, 7)
	Conv3DInto(out, in, weight, bias) // warm pools
	allocs := testing.AllocsPerRun(50, func() {
		Conv3DInto(out, in, weight, bias)
	})
	if allocs != 0 {
		t.Fatalf("Conv3DInto steady-state allocs/op = %v, want 0", allocs)
	}
}

func TestScratchReuse(t *testing.T) {
	s := GetScratch()
	a := s.Floats(64)
	a[0] = 42
	s.Put(a)
	b := s.Floats(64)
	if b[0] != 0 {
		t.Fatal("Scratch.Floats must return zeroed buffers")
	}
	if &a[0] != &b[0] {
		t.Fatal("Scratch.Floats should reuse a Put buffer of the same length")
	}
	s.Release()
}
