//go:build !race

package tensor

// raceEnabled mirrors race_on_test.go for non-race builds.
const raceEnabled = false
