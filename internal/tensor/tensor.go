// Package tensor provides the small dense-tensor kernel the Flood-Filling
// Network is built on: row-major float32 tensors, 3-D convolution with
// forward and backward passes, pointwise nonlinearities, and SGD with
// momentum. It is a from-scratch stand-in for the TensorFlow ops the paper's
// FFN uses, sized for laptop-scale volumes; wall-clock at cluster scale is
// projected by internal/gpusim.
package tensor

import (
	"fmt"
	"math"

	"chaseci/internal/sim"
)

// Tensor is a dense row-major float32 array with an explicit shape.
type Tensor struct {
	Shape []int
	Data  []float32
}

// New allocates a zero tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension in shape %v", shape))
		}
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// FromData wraps data with a shape; it panics on length mismatch.
func FromData(data []float32, shape ...int) *Tensor {
	t := &Tensor{Shape: append([]int(nil), shape...), Data: data}
	if t.Size() != len(data) {
		panic(fmt.Sprintf("tensor: shape %v needs %d elements, got %d", shape, t.Size(), len(data)))
	}
	return t
}

// Size returns the element count.
func (t *Tensor) Size() int {
	n := 1
	for _, d := range t.Shape {
		n *= d
	}
	return n
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	out := &Tensor{Shape: append([]int(nil), t.Shape...), Data: make([]float32, len(t.Data))}
	copy(out.Data, t.Data)
	return out
}

// Zero clears all elements in place.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Randomize fills with He-style initialization: normal(0, sqrt(2/fanIn)).
func (t *Tensor) Randomize(rng *sim.RNG, fanIn int) {
	std := float32(math.Sqrt(2.0 / float64(fanIn)))
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64()) * std
	}
}

// SameShape reports whether two tensors have identical shapes.
func SameShape(a, b *Tensor) bool {
	if len(a.Shape) != len(b.Shape) {
		return false
	}
	for i := range a.Shape {
		if a.Shape[i] != b.Shape[i] {
			return false
		}
	}
	return true
}

// AddInPlace accumulates o into t elementwise.
func (t *Tensor) AddInPlace(o *Tensor) {
	if !SameShape(t, o) {
		panic("tensor: AddInPlace shape mismatch")
	}
	for i := range t.Data {
		t.Data[i] += o.Data[i]
	}
}

// Scale multiplies every element by s in place.
func (t *Tensor) Scale(s float32) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// --- Volumetric (C, D, H, W) layout helpers --------------------------------

// vIdx computes the flat index of (c, z, y, x) in a (C,D,H,W) tensor.
func vIdx(shape []int, c, z, y, x int) int {
	return ((c*shape[1]+z)*shape[2]+y)*shape[3] + x
}

// ReLU applies max(0, x) elementwise, returning a new tensor.
func ReLU(in *Tensor) *Tensor {
	out := in.Clone()
	for i, v := range out.Data {
		if v < 0 {
			out.Data[i] = 0
		}
	}
	return out
}

// ReLUInto writes max(0, x) of in into dst (dst may alias in).
func ReLUInto(dst, in *Tensor) {
	for i, v := range in.Data {
		if v < 0 {
			v = 0
		}
		dst.Data[i] = v
	}
}

// ReLUBackward masks gradOut where the forward input was non-positive.
func ReLUBackward(in, gradOut *Tensor) *Tensor {
	out := gradOut.Clone()
	for i := range out.Data {
		if in.Data[i] <= 0 {
			out.Data[i] = 0
		}
	}
	return out
}

// ReLUBackwardInto writes gradOut masked by the forward input's sign into
// dst (dst may alias gradOut).
func ReLUBackwardInto(dst, in, gradOut *Tensor) {
	for i, v := range gradOut.Data {
		if in.Data[i] <= 0 {
			v = 0
		}
		dst.Data[i] = v
	}
}

// Sigmoid applies the logistic function elementwise.
func Sigmoid(in *Tensor) *Tensor {
	out := in.Clone()
	for i, v := range out.Data {
		out.Data[i] = float32(1 / (1 + math.Exp(-float64(v))))
	}
	return out
}

// SigmoidValue is the scalar logistic function.
func SigmoidValue(x float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(x))))
}

// LogitBCE computes mean binary cross-entropy between logits and {0,1}
// labels, plus the gradient w.r.t. the logits (the numerically stable
// sigmoid+BCE fusion). mask, if non-nil, weights each element (0 excludes).
func LogitBCE(logits, labels, mask *Tensor) (loss float64, grad *Tensor) {
	grad = New(logits.Shape...)
	loss = LogitBCEInto(grad, logits, labels, mask)
	return loss, grad
}

// LogitBCEInto is LogitBCE writing the gradient into a caller-provided
// tensor (overwritten) and returning the loss.
func LogitBCEInto(grad, logits, labels, mask *Tensor) (loss float64) {
	if !SameShape(logits, labels) {
		panic("tensor: LogitBCE shape mismatch")
	}
	grad.Zero()
	count := 0.0
	for i, z := range logits.Data {
		wgt := float32(1)
		if mask != nil {
			wgt = mask.Data[i]
			if wgt == 0 {
				continue
			}
		}
		y := float64(labels.Data[i])
		zf := float64(z)
		// log(1+exp(-|z|)) + max(z,0) - z*y
		loss += float64(wgt) * (math.Log(1+math.Exp(-math.Abs(zf))) + math.Max(zf, 0) - zf*y)
		grad.Data[i] = wgt * (SigmoidValue(z) - float32(y))
		count += float64(wgt)
	}
	if count > 0 {
		loss /= count
		grad.Scale(float32(1 / count))
	}
	return loss
}

// SGD is stochastic gradient descent with classical momentum.
type SGD struct {
	LR       float32
	Momentum float32

	velocity map[*Tensor]*Tensor
	velBias  map[*[]float32][]float32
}

// NewSGD creates an optimizer.
func NewSGD(lr, momentum float32) *SGD {
	return &SGD{
		LR: lr, Momentum: momentum,
		velocity: make(map[*Tensor]*Tensor),
		velBias:  make(map[*[]float32][]float32),
	}
}

// Step applies one update to param given its gradient.
func (o *SGD) Step(param, grad *Tensor) {
	v, ok := o.velocity[param]
	if !ok {
		v = New(param.Shape...)
		o.velocity[param] = v
	}
	for i := range param.Data {
		v.Data[i] = o.Momentum*v.Data[i] - o.LR*grad.Data[i]
		param.Data[i] += v.Data[i]
	}
}

// StepBias updates a bias vector.
func (o *SGD) StepBias(param *[]float32, grad []float32) {
	v, ok := o.velBias[param]
	if !ok {
		v = make([]float32, len(*param))
		o.velBias[param] = v
	}
	p := *param
	for i := range p {
		v[i] = o.Momentum*v[i] - o.LR*grad[i]
		p[i] += v[i]
	}
}

// VelocityFor returns param's momentum buffer, creating a zero one on first
// use — the hook checkpoint serialization uses to walk optimizer state in
// the network's canonical parameter order.
func (o *SGD) VelocityFor(param *Tensor) *Tensor {
	v, ok := o.velocity[param]
	if !ok {
		v = New(param.Shape...)
		o.velocity[param] = v
	}
	return v
}

// VelocityBiasFor returns a bias vector's momentum buffer, creating a zero
// one on first use.
func (o *SGD) VelocityBiasFor(param *[]float32) []float32 {
	v, ok := o.velBias[param]
	if !ok {
		v = make([]float32, len(*param))
		o.velBias[param] = v
	}
	return v
}
