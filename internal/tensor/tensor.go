// Package tensor provides the small dense-tensor kernel the Flood-Filling
// Network is built on: row-major float32 tensors, 3-D convolution with
// forward and backward passes, pointwise nonlinearities, and SGD with
// momentum. It is a from-scratch stand-in for the TensorFlow ops the paper's
// FFN uses, sized for laptop-scale volumes; wall-clock at cluster scale is
// projected by internal/gpusim.
package tensor

import (
	"fmt"
	"math"

	"chaseci/internal/sim"
)

// Tensor is a dense row-major float32 array with an explicit shape.
type Tensor struct {
	Shape []int
	Data  []float32
}

// New allocates a zero tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension in shape %v", shape))
		}
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// FromData wraps data with a shape; it panics on length mismatch.
func FromData(data []float32, shape ...int) *Tensor {
	t := &Tensor{Shape: append([]int(nil), shape...), Data: data}
	if t.Size() != len(data) {
		panic(fmt.Sprintf("tensor: shape %v needs %d elements, got %d", shape, t.Size(), len(data)))
	}
	return t
}

// Size returns the element count.
func (t *Tensor) Size() int {
	n := 1
	for _, d := range t.Shape {
		n *= d
	}
	return n
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	out := &Tensor{Shape: append([]int(nil), t.Shape...), Data: make([]float32, len(t.Data))}
	copy(out.Data, t.Data)
	return out
}

// Zero clears all elements in place.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Randomize fills with He-style initialization: normal(0, sqrt(2/fanIn)).
func (t *Tensor) Randomize(rng *sim.RNG, fanIn int) {
	std := float32(math.Sqrt(2.0 / float64(fanIn)))
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64()) * std
	}
}

// SameShape reports whether two tensors have identical shapes.
func SameShape(a, b *Tensor) bool {
	if len(a.Shape) != len(b.Shape) {
		return false
	}
	for i := range a.Shape {
		if a.Shape[i] != b.Shape[i] {
			return false
		}
	}
	return true
}

// AddInPlace accumulates o into t elementwise.
func (t *Tensor) AddInPlace(o *Tensor) {
	if !SameShape(t, o) {
		panic("tensor: AddInPlace shape mismatch")
	}
	for i := range t.Data {
		t.Data[i] += o.Data[i]
	}
}

// Scale multiplies every element by s in place.
func (t *Tensor) Scale(s float32) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// --- Volumetric (C, D, H, W) layout helpers --------------------------------

// vIdx computes the flat index of (c, z, y, x) in a (C,D,H,W) tensor.
func vIdx(shape []int, c, z, y, x int) int {
	return ((c*shape[1]+z)*shape[2]+y)*shape[3] + x
}

// Conv3D computes a 3-D convolution with stride 1 and symmetric zero
// padding kd/2, kh/2, kw/2 ("same" shape for odd kernels).
//
//	in:     (Cin, D, H, W)
//	weight: (Cout, Cin, KD, KH, KW)
//	bias:   len Cout (may be nil)
//	out:    (Cout, D, H, W)
func Conv3D(in, weight *Tensor, bias []float32) *Tensor {
	cin, d, h, w := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	cout := weight.Shape[0]
	if weight.Shape[1] != cin {
		panic(fmt.Sprintf("tensor: Conv3D weight expects %d input channels, input has %d", weight.Shape[1], cin))
	}
	kd, kh, kw := weight.Shape[2], weight.Shape[3], weight.Shape[4]
	pd, ph, pw := kd/2, kh/2, kw/2
	out := New(cout, d, h, w)
	for oc := 0; oc < cout; oc++ {
		var b float32
		if bias != nil {
			b = bias[oc]
		}
		for z := 0; z < d; z++ {
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					sum := b
					for ic := 0; ic < cin; ic++ {
						for dz := 0; dz < kd; dz++ {
							iz := z + dz - pd
							if iz < 0 || iz >= d {
								continue
							}
							for dy := 0; dy < kh; dy++ {
								iy := y + dy - ph
								if iy < 0 || iy >= h {
									continue
								}
								wBase := (((oc*cin+ic)*kd+dz)*kh + dy) * kw
								iBase := ((ic*d+iz)*h + iy) * w
								for dx := 0; dx < kw; dx++ {
									ix := x + dx - pw
									if ix < 0 || ix >= w {
										continue
									}
									sum += weight.Data[wBase+dx] * in.Data[iBase+ix]
								}
							}
						}
					}
					out.Data[vIdx(out.Shape, oc, z, y, x)] = sum
				}
			}
		}
	}
	return out
}

// Conv3DBackward computes gradients of a Conv3D call: given the forward
// input, weights, and the gradient of the loss w.r.t. the output, it returns
// gradients w.r.t. input, weights, and bias.
func Conv3DBackward(in, weight, gradOut *Tensor) (gradIn, gradW *Tensor, gradB []float32) {
	cin, d, h, w := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	cout := weight.Shape[0]
	kd, kh, kw := weight.Shape[2], weight.Shape[3], weight.Shape[4]
	pd, ph, pw := kd/2, kh/2, kw/2
	gradIn = New(cin, d, h, w)
	gradW = New(cout, cin, kd, kh, kw)
	gradB = make([]float32, cout)
	for oc := 0; oc < cout; oc++ {
		for z := 0; z < d; z++ {
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					g := gradOut.Data[vIdx(gradOut.Shape, oc, z, y, x)]
					if g == 0 {
						continue
					}
					gradB[oc] += g
					for ic := 0; ic < cin; ic++ {
						for dz := 0; dz < kd; dz++ {
							iz := z + dz - pd
							if iz < 0 || iz >= d {
								continue
							}
							for dy := 0; dy < kh; dy++ {
								iy := y + dy - ph
								if iy < 0 || iy >= h {
									continue
								}
								wBase := (((oc*cin+ic)*kd+dz)*kh + dy) * kw
								iBase := ((ic*d+iz)*h + iy) * w
								for dx := 0; dx < kw; dx++ {
									ix := x + dx - pw
									if ix < 0 || ix >= w {
										continue
									}
									gradW.Data[wBase+dx] += g * in.Data[iBase+ix]
									gradIn.Data[iBase+ix] += g * weight.Data[wBase+dx]
								}
							}
						}
					}
				}
			}
		}
	}
	return gradIn, gradW, gradB
}

// ReLU applies max(0, x) elementwise, returning a new tensor.
func ReLU(in *Tensor) *Tensor {
	out := in.Clone()
	for i, v := range out.Data {
		if v < 0 {
			out.Data[i] = 0
		}
	}
	return out
}

// ReLUBackward masks gradOut where the forward input was non-positive.
func ReLUBackward(in, gradOut *Tensor) *Tensor {
	out := gradOut.Clone()
	for i := range out.Data {
		if in.Data[i] <= 0 {
			out.Data[i] = 0
		}
	}
	return out
}

// Sigmoid applies the logistic function elementwise.
func Sigmoid(in *Tensor) *Tensor {
	out := in.Clone()
	for i, v := range out.Data {
		out.Data[i] = float32(1 / (1 + math.Exp(-float64(v))))
	}
	return out
}

// SigmoidValue is the scalar logistic function.
func SigmoidValue(x float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(x))))
}

// LogitBCE computes mean binary cross-entropy between logits and {0,1}
// labels, plus the gradient w.r.t. the logits (the numerically stable
// sigmoid+BCE fusion). mask, if non-nil, weights each element (0 excludes).
func LogitBCE(logits, labels, mask *Tensor) (loss float64, grad *Tensor) {
	if !SameShape(logits, labels) {
		panic("tensor: LogitBCE shape mismatch")
	}
	grad = New(logits.Shape...)
	count := 0.0
	for i, z := range logits.Data {
		wgt := float32(1)
		if mask != nil {
			wgt = mask.Data[i]
			if wgt == 0 {
				continue
			}
		}
		y := float64(labels.Data[i])
		zf := float64(z)
		// log(1+exp(-|z|)) + max(z,0) - z*y
		loss += float64(wgt) * (math.Log(1+math.Exp(-math.Abs(zf))) + math.Max(zf, 0) - zf*y)
		grad.Data[i] = wgt * (SigmoidValue(z) - float32(y))
		count += float64(wgt)
	}
	if count > 0 {
		loss /= count
		grad.Scale(float32(1 / count))
	}
	return loss, grad
}

// SGD is stochastic gradient descent with classical momentum.
type SGD struct {
	LR       float32
	Momentum float32

	velocity map[*Tensor]*Tensor
	velBias  map[*[]float32][]float32
}

// NewSGD creates an optimizer.
func NewSGD(lr, momentum float32) *SGD {
	return &SGD{
		LR: lr, Momentum: momentum,
		velocity: make(map[*Tensor]*Tensor),
		velBias:  make(map[*[]float32][]float32),
	}
}

// Step applies one update to param given its gradient.
func (o *SGD) Step(param, grad *Tensor) {
	v, ok := o.velocity[param]
	if !ok {
		v = New(param.Shape...)
		o.velocity[param] = v
	}
	for i := range param.Data {
		v.Data[i] = o.Momentum*v.Data[i] - o.LR*grad.Data[i]
		param.Data[i] += v.Data[i]
	}
}

// StepBias updates a bias vector.
func (o *SGD) StepBias(param *[]float32, grad []float32) {
	v, ok := o.velBias[param]
	if !ok {
		v = make([]float32, len(*param))
		o.velBias[param] = v
	}
	p := *param
	for i := range p {
		v[i] = o.Momentum*v[i] - o.LR*grad[i]
		p[i] += v[i]
	}
}
