//go:build !amd64

package tensor

// Non-amd64 builds have no SIMD kernels; every dispatch takes the portable
// scalar engine.
var hasAVX2, hasVNNI = false, false
