//go:build !nosimd

package tensor

// spanDefault enables the SIMD span conv path on capable CPUs; build with
// `-tags nosimd` to pin the bit-exact scalar engine instead.
const spanDefault = true
