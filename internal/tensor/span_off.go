//go:build nosimd

package tensor

// The nosimd build tag pins every conv dispatch to the scalar engine.
const spanDefault = false
