package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"chaseci/internal/sim"
)

func TestNewShapeAndSize(t *testing.T) {
	a := New(2, 3, 4)
	if a.Size() != 24 || len(a.Data) != 24 {
		t.Fatalf("size = %d/%d, want 24", a.Size(), len(a.Data))
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(2, 0)
}

func TestFromDataMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromData mismatch did not panic")
		}
	}()
	FromData(make([]float32, 5), 2, 3)
}

func TestCloneIndependent(t *testing.T) {
	a := New(4)
	a.Fill(1)
	b := a.Clone()
	b.Data[0] = 9
	if a.Data[0] != 1 {
		t.Fatal("clone shares storage")
	}
}

func TestConv3DIdentityKernel(t *testing.T) {
	// A delta kernel must reproduce the input exactly.
	rng := sim.NewRNG(1)
	in := New(1, 4, 5, 6)
	for i := range in.Data {
		in.Data[i] = float32(rng.NormFloat64())
	}
	w := New(1, 1, 3, 3, 3)
	w.Data[vIdx5(w.Shape, 0, 0, 1, 1, 1)] = 1
	out := Conv3D(in, w, nil)
	for i := range in.Data {
		if math.Abs(float64(out.Data[i]-in.Data[i])) > 1e-6 {
			t.Fatalf("identity conv differs at %d: %v vs %v", i, out.Data[i], in.Data[i])
		}
	}
}

func vIdx5(shape []int, a, b, c, d, e int) int {
	return (((a*shape[1]+b)*shape[2]+c)*shape[3]+d)*shape[4] + e
}

func TestConv3DShiftKernel(t *testing.T) {
	// A kernel with its 1 at (dz=0, dy=1, dx=1) shifts the volume by -1 in z.
	in := New(1, 3, 3, 3)
	in.Data[vIdx(in.Shape, 0, 1, 1, 1)] = 5
	w := New(1, 1, 3, 3, 3)
	w.Data[vIdx5(w.Shape, 0, 0, 0, 1, 1)] = 1 // reads from z+(-1)... verifies offset logic
	out := Conv3D(in, w, nil)
	// out(z) = in(z-1): value appears at z=2.
	if out.Data[vIdx(out.Shape, 0, 2, 1, 1)] != 5 {
		t.Fatalf("shift conv: expected value at z=2, got field %v", out.Data)
	}
}

func TestConv3DBias(t *testing.T) {
	in := New(1, 2, 2, 2)
	w := New(2, 1, 1, 1, 1)
	out := Conv3D(in, w, []float32{1.5, -2})
	for i := 0; i < 8; i++ {
		if out.Data[i] != 1.5 {
			t.Fatalf("channel 0 = %v, want 1.5", out.Data[i])
		}
		if out.Data[8+i] != -2 {
			t.Fatalf("channel 1 = %v, want -2", out.Data[8+i])
		}
	}
}

func TestConv3DLinearity(t *testing.T) {
	// conv(a*x + b*y) == a*conv(x) + b*conv(y)
	rng := sim.NewRNG(3)
	mk := func() *Tensor {
		v := New(2, 3, 4, 3)
		for i := range v.Data {
			v.Data[i] = float32(rng.NormFloat64())
		}
		return v
	}
	x, y := mk(), mk()
	w := New(3, 2, 3, 3, 3)
	w.Randomize(rng, 2*27)
	mix := New(2, 3, 4, 3)
	for i := range mix.Data {
		mix.Data[i] = 2*x.Data[i] - 3*y.Data[i]
	}
	left := Conv3D(mix, w, nil)
	cx, cy := Conv3D(x, w, nil), Conv3D(y, w, nil)
	for i := range left.Data {
		want := 2*cx.Data[i] - 3*cy.Data[i]
		if math.Abs(float64(left.Data[i]-want)) > 1e-3 {
			t.Fatalf("linearity violated at %d: %v vs %v", i, left.Data[i], want)
		}
	}
}

func TestConv3DChannelMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("channel mismatch did not panic")
		}
	}()
	Conv3D(New(2, 2, 2, 2), New(1, 3, 1, 1, 1), nil)
}

// numericalGrad estimates dLoss/dparam[i] by central differences where
// loss = sum(conv output * seedGrad).
func numericalGrad(in, w *Tensor, bias []float32, seed *Tensor, param []float32, i int) float64 {
	const eps = 1e-2
	orig := param[i]
	param[i] = orig + eps
	outP := Conv3D(in, w, bias)
	param[i] = orig - eps
	outM := Conv3D(in, w, bias)
	param[i] = orig
	var lp, lm float64
	for j := range outP.Data {
		lp += float64(outP.Data[j] * seed.Data[j])
		lm += float64(outM.Data[j] * seed.Data[j])
	}
	return (lp - lm) / (2 * eps)
}

func TestConv3DBackwardMatchesNumericalGradient(t *testing.T) {
	rng := sim.NewRNG(7)
	in := New(2, 3, 3, 3)
	for i := range in.Data {
		in.Data[i] = float32(rng.NormFloat64())
	}
	w := New(2, 2, 3, 3, 3)
	w.Randomize(rng, 54)
	bias := []float32{0.1, -0.2}
	seed := New(2, 3, 3, 3) // dLoss/dOut
	for i := range seed.Data {
		seed.Data[i] = float32(rng.NormFloat64())
	}
	gradIn, gradW, gradB := Conv3DBackward(in, w, seed)

	check := func(name string, analytic float32, numeric float64) {
		if math.Abs(float64(analytic)-numeric) > 1e-2*(1+math.Abs(numeric)) {
			t.Fatalf("%s gradient mismatch: analytic %v vs numeric %v", name, analytic, numeric)
		}
	}
	for _, i := range []int{0, 5, 17, len(w.Data) - 1} {
		check("weight", gradW.Data[i], numericalGrad(in, w, bias, seed, w.Data, i))
	}
	for _, i := range []int{0, 3, len(in.Data) - 1} {
		check("input", gradIn.Data[i], numericalGrad(in, w, bias, seed, in.Data, i))
	}
	// Bias gradient: dLoss/db[oc] = sum of seed over channel oc.
	var want float64
	for j := 0; j < 27; j++ {
		want += float64(seed.Data[j])
	}
	check("bias", gradB[0], want)
}

func TestReLUForwardBackward(t *testing.T) {
	in := FromData([]float32{-1, 0, 2, -3}, 1, 1, 1, 4)
	out := ReLU(in)
	want := []float32{0, 0, 2, 0}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Fatalf("ReLU = %v, want %v", out.Data, want)
		}
	}
	g := FromData([]float32{1, 1, 1, 1}, 1, 1, 1, 4)
	gb := ReLUBackward(in, g)
	wantG := []float32{0, 0, 1, 0}
	for i := range wantG {
		if gb.Data[i] != wantG[i] {
			t.Fatalf("ReLU grad = %v, want %v", gb.Data, wantG)
		}
	}
}

func TestSigmoidRange(t *testing.T) {
	in := FromData([]float32{-100, 0, 100}, 3)
	out := Sigmoid(in)
	if out.Data[0] > 1e-6 || math.Abs(float64(out.Data[1]-0.5)) > 1e-6 || out.Data[2] < 1-1e-6 {
		t.Fatalf("sigmoid = %v", out.Data)
	}
}

func TestLogitBCEPerfectPrediction(t *testing.T) {
	logits := FromData([]float32{20, -20}, 2)
	labels := FromData([]float32{1, 0}, 2)
	loss, grad := LogitBCE(logits, labels, nil)
	if loss > 1e-6 {
		t.Fatalf("loss = %v, want ~0", loss)
	}
	for _, g := range grad.Data {
		if math.Abs(float64(g)) > 1e-6 {
			t.Fatalf("grad = %v, want ~0", grad.Data)
		}
	}
}

func TestLogitBCEGradientDirection(t *testing.T) {
	logits := FromData([]float32{0, 0}, 2)
	labels := FromData([]float32{1, 0}, 2)
	loss, grad := LogitBCE(logits, labels, nil)
	if math.Abs(loss-math.Log(2)) > 1e-6 {
		t.Fatalf("loss at 0 logits = %v, want ln2", loss)
	}
	if grad.Data[0] >= 0 || grad.Data[1] <= 0 {
		t.Fatalf("gradient signs wrong: %v", grad.Data)
	}
}

func TestLogitBCEMaskExcludes(t *testing.T) {
	logits := FromData([]float32{5, -5}, 2)
	labels := FromData([]float32{0, 0}, 2) // first is badly wrong
	mask := FromData([]float32{0, 1}, 2)   // but excluded
	loss, grad := LogitBCE(logits, labels, mask)
	if loss > 0.01 {
		t.Fatalf("masked loss = %v, want tiny", loss)
	}
	if grad.Data[0] != 0 {
		t.Fatal("masked element got gradient")
	}
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	// Minimize f(p) = 0.5*sum(p^2); gradient = p. SGD must drive p to 0.
	p := FromData([]float32{5, -3, 2}, 3)
	opt := NewSGD(0.1, 0.9)
	for i := 0; i < 200; i++ {
		opt.Step(p, p.Clone())
	}
	for _, v := range p.Data {
		if math.Abs(float64(v)) > 1e-3 {
			t.Fatalf("SGD did not converge: %v", p.Data)
		}
	}
}

func TestSGDBias(t *testing.T) {
	b := []float32{4, -4}
	opt := NewSGD(0.1, 0.9)
	for i := 0; i < 200; i++ {
		g := append([]float32(nil), b...)
		opt.StepBias(&b, g)
	}
	for _, v := range b {
		if math.Abs(float64(v)) > 1e-3 {
			t.Fatalf("bias SGD did not converge: %v", b)
		}
	}
}

func TestPropertyConvOutputShape(t *testing.T) {
	f := func(dRaw, hRaw, wRaw, coutRaw uint8) bool {
		d := int(dRaw%5) + 1
		h := int(hRaw%5) + 1
		w := int(wRaw%5) + 1
		cout := int(coutRaw%3) + 1
		in := New(2, d, h, w)
		k := New(cout, 2, 3, 3, 3)
		out := Conv3D(in, k, nil)
		return out.Shape[0] == cout && out.Shape[1] == d && out.Shape[2] == h && out.Shape[3] == w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyReLUIdempotent(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		data := make([]float32, len(raw))
		for i, v := range raw {
			data[i] = float32(v)
		}
		in := FromData(data, len(data))
		once := ReLU(in)
		twice := ReLU(once)
		for i := range once.Data {
			if once.Data[i] != twice.Data[i] || once.Data[i] < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
