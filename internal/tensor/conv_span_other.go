//go:build !amd64

package tensor

// Stub so the span dispatch compiles on non-amd64; spanActive is always
// false there, so this is unreachable.
func conv33Span(out, pin, w *float32, cin, pch, pplane, pw, ow, nrows int64, mask *int32, bias float32) {
	panic("tensor: conv33Span called without SIMD support")
}
