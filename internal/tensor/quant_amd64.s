//go:build amd64

#include "textflag.h"

// func qconv33Span4(out *float32, p32, wp *uint32, cin, pch, pplane, pw, ow, nrows int64, mask *int32, scale, offs float32)
//
// 4-row x 8-lane int8 dot-product block over packed activation windows, with
// the requantization (out = scale*float32(acc) + offs) fused into the store.
// Each p32 dword holds one padded cell's 3-byte x-window; each wp dword one
// tap-row's three weight codes, so one VPDPBUSD accumulates a whole tap-row
// for 8 outputs. VPDPBUSD has multi-cycle latency, so each output row keeps
// three accumulators — one per dy tap (sets A=Y0-3, B=Y4-7, C=Y8-11) —
// giving every chain a three-tap-row reuse distance; the sets merge with
// exact integer VPADDD before requantization. Integer accumulation is
// order-free, so the merged result is bit-identical to the scalar int32
// engine, and CVTDQ2PS/VMULPS/VADDPS round exactly like the Go requant
// expression. Stores are column-masked (VMASKMOVPS) and row-limited by
// nrows.
TEXT ·qconv33Span4(SB), NOSPLIT, $0-88
	MOVQ out+0(FP), DI
	MOVQ p32+8(FP), BX
	MOVQ wp+16(FP), DX
	MOVQ pch+32(FP), R13
	SHLQ $2, R13
	MOVQ pplane+40(FP), R12
	SHLQ $2, R12
	MOVQ pw+48(FP), R11
	SHLQ $2, R11

	VPXOR Y0, Y0, Y0
	VPXOR Y1, Y1, Y1
	VPXOR Y2, Y2, Y2
	VPXOR Y3, Y3, Y3
	VPXOR Y4, Y4, Y4
	VPXOR Y5, Y5, Y5
	VPXOR Y6, Y6, Y6
	VPXOR Y7, Y7, Y7
	VPXOR Y8, Y8, Y8
	VPXOR Y9, Y9, Y9
	VPXOR Y10, Y10, Y10
	VPXOR Y11, Y11, Y11

	MOVQ cin+24(FP), R8

ic_loop:
	MOVQ BX, AX
	MOVQ $3, R9

dz_loop:
	// dy = 0 -> set A (Y0-Y3). Rows r = 0..3 read base + r*pw; each block
	// leaves CX at base + pw, which is the next dy's base.
	MOVQ         AX, CX
	VPBROADCASTD (DX), Y12
	VMOVDQU      (CX), Y13
	VPDPBUSD     Y12, Y13, Y0
	VMOVDQU      (CX)(R11*1), Y14
	VPDPBUSD     Y12, Y14, Y1
	VMOVDQU      (CX)(R11*2), Y13
	VPDPBUSD     Y12, Y13, Y2
	LEAQ         (CX)(R11*2), CX
	VMOVDQU      (CX)(R11*1), Y14
	VPDPBUSD     Y12, Y14, Y3
	SUBQ         R11, CX

	// dy = 1 -> set B (Y4-Y7).
	VPBROADCASTD 4(DX), Y12
	VMOVDQU      (CX), Y13
	VPDPBUSD     Y12, Y13, Y4
	VMOVDQU      (CX)(R11*1), Y14
	VPDPBUSD     Y12, Y14, Y5
	VMOVDQU      (CX)(R11*2), Y13
	VPDPBUSD     Y12, Y13, Y6
	LEAQ         (CX)(R11*2), CX
	VMOVDQU      (CX)(R11*1), Y14
	VPDPBUSD     Y12, Y14, Y7
	SUBQ         R11, CX

	// dy = 2 -> set C (Y8-Y11).
	VPBROADCASTD 8(DX), Y12
	VMOVDQU      (CX), Y13
	VPDPBUSD     Y12, Y13, Y8
	VMOVDQU      (CX)(R11*1), Y14
	VPDPBUSD     Y12, Y14, Y9
	VMOVDQU      (CX)(R11*2), Y13
	VPDPBUSD     Y12, Y13, Y10
	LEAQ         (CX)(R11*2), CX
	VMOVDQU      (CX)(R11*1), Y14
	VPDPBUSD     Y12, Y14, Y11

	ADDQ $12, DX
	ADDQ R12, AX
	DECQ R9
	JNZ  dz_loop

	ADDQ R13, BX
	DECQ R8
	JNZ  ic_loop

	// Merge the three dy sets (exact integer adds) and requantize.
	VPADDD Y4, Y0, Y0
	VPADDD Y8, Y0, Y0
	VPADDD Y5, Y1, Y1
	VPADDD Y9, Y1, Y1
	VPADDD Y6, Y2, Y2
	VPADDD Y10, Y2, Y2
	VPADDD Y7, Y3, Y3
	VPADDD Y11, Y3, Y3

	VCVTDQ2PS Y0, Y0
	VCVTDQ2PS Y1, Y1
	VCVTDQ2PS Y2, Y2
	VCVTDQ2PS Y3, Y3

	VBROADCASTSS scale+80(FP), Y12
	VBROADCASTSS offs+84(FP), Y13
	VMULPS       Y12, Y0, Y0
	VADDPS       Y13, Y0, Y0
	VMULPS       Y12, Y1, Y1
	VADDPS       Y13, Y1, Y1
	VMULPS       Y12, Y2, Y2
	VADDPS       Y13, Y2, Y2
	VMULPS       Y12, Y3, Y3
	VADDPS       Y13, Y3, Y3

	// Masked stores for nrows rows.
	MOVQ    mask+72(FP), CX
	VMOVDQU (CX), Y14
	MOVQ    ow+56(FP), R8
	SHLQ    $2, R8
	MOVQ    nrows+64(FP), CX

	VMASKMOVPS Y0, Y14, (DI)
	DECQ       CX
	JZ         done
	ADDQ       R8, DI
	VMASKMOVPS Y1, Y14, (DI)
	DECQ       CX
	JZ         done
	ADDQ       R8, DI
	VMASKMOVPS Y2, Y14, (DI)
	DECQ       CX
	JZ         done
	ADDQ       R8, DI
	VMASKMOVPS Y3, Y14, (DI)

done:
	VZEROUPPER
	RET

// Dword permutation fixing the lane interleave of VPACKSSDW+VPACKUSWB.
DATA qpermIdx<>+0(SB)/4, $0
DATA qpermIdx<>+4(SB)/4, $4
DATA qpermIdx<>+8(SB)/4, $1
DATA qpermIdx<>+12(SB)/4, $5
DATA qpermIdx<>+16(SB)/4, $2
DATA qpermIdx<>+20(SB)/4, $6
DATA qpermIdx<>+24(SB)/4, $3
DATA qpermIdx<>+28(SB)/4, $7
GLOBL qpermIdx<>(SB), RODATA|NOPTR, $32

// In-lane shuffle cutting eight overlapping 3-byte x-windows (zero-extended
// to dwords) from a 16-byte block replicated to both lanes: lane 0 emits
// windows at offsets 0-3, lane 1 at offsets 4-7.
DATA qshuf24<>+0(SB)/8, $0xff030201ff020100
DATA qshuf24<>+8(SB)/8, $0xff050403ff040302
DATA qshuf24<>+16(SB)/8, $0xff070605ff060504
DATA qshuf24<>+24(SB)/8, $0xff090807ff080706
GLOBL qshuf24<>(SB), RODATA|NOPTR, $32

// func minMaxF32(src *float32, n int64) (lo, hi float32)
//
// Running min/max of n floats folded together with 0 (the accumulators start
// at zero, matching the scalar loop's zero-initialized lo/hi). n must be a
// positive multiple of 8. No NaNs.
TEXT ·minMaxF32(SB), NOSPLIT, $0-24
	MOVQ src+0(FP), SI
	MOVQ n+8(FP), CX
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
mmLoop:
	VMOVUPS (SI), Y2
	VMINPS Y2, Y0, Y0
	VMAXPS Y2, Y1, Y1
	ADDQ $32, SI
	SUBQ $8, CX
	JNE mmLoop
	VEXTRACTF128 $1, Y0, X2
	VMINPS X2, X0, X0
	VEXTRACTF128 $1, Y1, X3
	VMAXPS X3, X1, X1
	VPERMILPS $0x4e, X0, X2
	VMINPS X2, X0, X0
	VPERMILPS $0xb1, X0, X2
	VMINPS X2, X0, X0
	VPERMILPS $0x4e, X1, X3
	VMAXPS X3, X1, X1
	VPERMILPS $0xb1, X1, X3
	VMAXPS X3, X1, X1
	VMOVSS X0, lo+16(FP)
	VMOVSS X1, hi+20(FP)
	VZEROUPPER
	RET

// func quantU8(dst *uint8, src *float32, n int64, inv, zf float32)
//
// dst[i] = clamp(0, 255, roundNearestEven(src[i]*inv + zf)) for n floats.
// n must be a positive multiple of 32. The separate VMULPS+VADDPS (no FMA)
// and VCVTPS2DQ match the Go tail's float32 mul/add + math.RoundToEven
// exactly; VPACKSSDW+VPACKUSWB saturate int32 through int16 to the uint8
// clamp (in-range by construction: inv/zf come from the slot's own range,
// so v*inv+zf lands near [0, 255] and never overflows int32).
TEXT ·quantU8(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	VBROADCASTSS inv+24(FP), Y14
	VBROADCASTSS zf+28(FP), Y15
	VMOVDQU qpermIdx<>(SB), Y13
quLoop:
	VMOVUPS (SI), Y0
	VMOVUPS 32(SI), Y1
	VMOVUPS 64(SI), Y2
	VMOVUPS 96(SI), Y3
	VMULPS Y14, Y0, Y0
	VMULPS Y14, Y1, Y1
	VMULPS Y14, Y2, Y2
	VMULPS Y14, Y3, Y3
	VADDPS Y15, Y0, Y0
	VADDPS Y15, Y1, Y1
	VADDPS Y15, Y2, Y2
	VADDPS Y15, Y3, Y3
	VCVTPS2DQ Y0, Y0
	VCVTPS2DQ Y1, Y1
	VCVTPS2DQ Y2, Y2
	VCVTPS2DQ Y3, Y3
	VPACKSSDW Y1, Y0, Y4
	VPACKSSDW Y3, Y2, Y5
	VPACKUSWB Y5, Y4, Y6
	VPERMD Y6, Y13, Y6
	VMOVDQU Y6, (DI)
	ADDQ $128, SI
	ADDQ $32, DI
	SUBQ $32, CX
	JNE quLoop
	VZEROUPPER
	RET

// func pack24(dst *uint32, src *uint8, iters int64)
//
// iters iterations, each reading 16 bytes at src+8k and storing 8 packed
// 3-byte windows (dwords) at dst+8k: dst[i] = src[i] | src[i+1]<<8 |
// src[i+2]<<16. iters must be positive and the last read (8*(iters-1)+16
// bytes) in bounds.
TEXT ·pack24(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ iters+16(FP), CX
	VMOVDQU qshuf24<>(SB), Y15
p24Loop:
	VBROADCASTI128 (SI), Y0
	VPSHUFB Y15, Y0, Y0
	VMOVDQU Y0, (DI)
	ADDQ $8, SI
	ADDQ $32, DI
	DECQ CX
	JNE p24Loop
	VZEROUPPER
	RET
