package tensor

import (
	"fmt"
	"sync"

	"chaseci/internal/parallel"
)

// Batched, fused 3-D convolution kernels. Conv3DBatchInto processes B packed
// inputs against one shared weight tensor in a single dispatch: the parallel
// fan-out shards flattened (b, oc, z) output slices, so the weights stay
// cache-hot across the whole batch instead of being re-streamed once per
// input. The fused variants fold an epilogue — ReLU, or residual-add+ReLU —
// into the output write of each slice, eliminating the separate full-tensor
// traversals (ReLUInto, AddInPlace) the layer would otherwise pay.
//
// Bit-exactness contract: every output element receives its tap
// contributions in the scalar kernel's ic -> dz -> dy -> dx order with the
// same skip conditions, the epilogue applies after the element's last tap
// exactly as the unfused sequence (conv write, residual add, ReLU) would,
// and each (b, oc, z) slice is written by exactly one worker — so results
// are bit-exact with Conv3DInto-then-ReLUInto(-then-AddInPlace) at every
// batch size and worker count. Unlike convFwd's one-tap-per-pass rows, the
// batched kernel walks each (ic, dz, dy) row once and accumulates all kw
// taps into a register before storing, which is the same per-element
// operation sequence with ~kw fewer output loads/stores.

// convEpilogue selects what is fused into the output write of a slice.
type convEpilogue int

const (
	epNone convEpilogue = iota
	epReLU
	epResReLU
)

// convBatch is the pooled batched-forward Task: one Run processes a range
// of flattened (b, oc, z) output slices.
type convBatch struct {
	out, in, w, bias []float32
	res              []float32 // residual input (epResReLU), same shape as out
	pad              []float32 // zero-padded input (span path only)
	span             bool      // route Run through the SIMD span kernel
	ep               convEpilogue
	cout             int
	cin, d, h, wd    int
	kd, kh, kw       int
	pd, ph, pw       int
}

var convBatchPool = sync.Pool{New: func() any { return new(convBatch) }}

func (t *convBatch) Run(start, end int) {
	if t.span {
		t.runSpan(start, end)
		return
	}
	cin, d, h, w := t.cin, t.d, t.h, t.wd
	kd, kh, kw := t.kd, t.kh, t.kw
	pd := t.pd
	hw := h * w
	chSize := d * hw
	fast33 := kh == 3 && kw == 3 && w >= 3
	for u := start; u < end; u++ {
		b, rem := u/(t.cout*d), u%(t.cout*d)
		oc, z := rem/d, rem%d
		var bv float32
		if t.bias != nil {
			bv = t.bias[oc]
		}
		sliceBase := (b*t.cout + oc) * chSize
		outPlane := t.out[sliceBase+z*hw:][:hw]
		for i := range outPlane {
			outPlane[i] = bv
		}
		inBatch := t.in[b*cin*chSize:]
		for ic := 0; ic < cin; ic++ {
			inCh := inBatch[ic*chSize:]
			for dz := 0; dz < kd; dz++ {
				iz := z + dz - pd
				if iz < 0 || iz >= d {
					continue
				}
				inPlane := inCh[iz*hw:][:hw]
				wTap := t.w[(((oc*cin+ic)*kd+dz)*kh)*kw:][:kh*kw]
				if fast33 {
					t.plane33(outPlane, inPlane, wTap)
				} else {
					t.planeGeneric(outPlane, inPlane, wTap)
				}
			}
		}
		// Fused epilogue: applied once per slice, after the slice's last tap
		// — the same per-element sequence as the unfused conv-then-add-then-
		// ReLU traversals.
		switch t.ep {
		case epReLU:
			for i, v := range outPlane {
				if v < 0 {
					outPlane[i] = 0
				}
			}
		case epResReLU:
			resPlane := t.res[sliceBase+z*hw:][:hw]
			for i := range outPlane {
				v := outPlane[i] + resPlane[i]
				if v < 0 {
					v = 0
				}
				outPlane[i] = v
			}
		}
	}
}

// plane33 accumulates one (ic, dz) input plane's 3x3 in-plane taps into the
// output plane — the dominant FFN geometry. All nine weights live in
// registers and every interior element accumulates its nine taps in dy -> dx
// order before a single store, so the per-element operation sequence (and
// therefore the result) is identical to the generic one-tap-per-pass walk
// while touching the output once instead of nine times.
func (t *convBatch) plane33(outPlane, inPlane, wt []float32) {
	h, w := t.h, t.wd
	w00, w01, w02 := wt[0], wt[1], wt[2]
	w10, w11, w12 := wt[3], wt[4], wt[5]
	w20, w21, w22 := wt[6], wt[7], wt[8]
	n := w - 2
	for y := 0; y < h; y++ {
		outRow := outPlane[y*w:][:w]
		if y >= 1 && y <= h-2 {
			r0 := inPlane[(y-1)*w:][:w]
			r1 := inPlane[y*w:][:w]
			r2 := inPlane[(y+1)*w:][:w]
			// Left border x=0: in-bounds taps are dx=1,2 for each dy.
			acc := outRow[0]
			acc += w01 * r0[0]
			acc += w02 * r0[1]
			acc += w11 * r1[0]
			acc += w12 * r1[1]
			acc += w21 * r2[0]
			acc += w22 * r2[1]
			outRow[0] = acc
			// Interior: equal-length shifted views so every index is
			// provably in bounds; nine-tap register accumulation.
			if n > 0 {
				dst := outRow[1:][:n]
				s00, s01, s02 := r0[0:][:n], r0[1:][:n], r0[2:][:n]
				s10, s11, s12 := r1[0:][:n], r1[1:][:n], r1[2:][:n]
				s20, s21, s22 := r2[0:][:n], r2[1:][:n], r2[2:][:n]
				for i := range dst {
					a := dst[i]
					a += w00 * s00[i]
					a += w01 * s01[i]
					a += w02 * s02[i]
					a += w10 * s10[i]
					a += w11 * s11[i]
					a += w12 * s12[i]
					a += w20 * s20[i]
					a += w21 * s21[i]
					a += w22 * s22[i]
					dst[i] = a
				}
			}
			// Right border x=w-1: in-bounds taps are dx=0,1.
			acc = outRow[w-1]
			acc += w00 * r0[w-2]
			acc += w01 * r0[w-1]
			acc += w10 * r1[w-2]
			acc += w11 * r1[w-1]
			acc += w20 * r2[w-2]
			acc += w21 * r2[w-1]
			outRow[w-1] = acc
			continue
		}
		// y-border rows: one single-row pass per in-bounds dy, ascending, so
		// each element still receives its taps in dy -> dx order.
		for dy := 0; dy < 3; dy++ {
			iy := y + dy - 1
			if iy < 0 || iy >= h {
				continue
			}
			wr := wt[dy*3:][:3]
			row3(outRow, inPlane[iy*w:][:w], wr[0], wr[1], wr[2], w, n)
		}
	}
}

// row3 accumulates one kernel row's three taps into one output row.
func row3(outRow, r []float32, w0, w1, w2 float32, w, n int) {
	acc := outRow[0]
	acc += w1 * r[0]
	acc += w2 * r[1]
	outRow[0] = acc
	if n > 0 {
		dst := outRow[1:][:n]
		s0, s1, s2 := r[0:][:n], r[1:][:n], r[2:][:n]
		for i := range dst {
			a := dst[i]
			a += w0 * s0[i]
			a += w1 * s1[i]
			a += w2 * s2[i]
			dst[i] = a
		}
	}
	acc = outRow[w-1]
	acc += w0 * r[w-2]
	acc += w1 * r[w-1]
	outRow[w-1] = acc
}

// planeGeneric accumulates one (ic, dz) plane with arbitrary (kh, kw): per
// tap, the valid x range becomes a bounds-check-free run over each valid
// output row (the convFwd structure), preserving dy -> dx per-element order.
func (t *convBatch) planeGeneric(outPlane, inPlane, wTap []float32) {
	h, w := t.h, t.wd
	kh, kw := t.kh, t.kw
	ph, pw := t.ph, t.pw
	for dy := 0; dy < kh; dy++ {
		yLo, yHi := ph-dy, h-1+ph-dy
		if yLo < 0 {
			yLo = 0
		}
		if yHi > h-1 {
			yHi = h - 1
		}
		if yLo > yHi {
			continue
		}
		wRow := wTap[dy*kw:][:kw]
		for dx := 0; dx < kw; dx++ {
			wv := wRow[dx]
			off := dx - pw
			x0, x1 := 0, w
			if off < 0 {
				x0 = -off
			} else {
				x1 = w - off
			}
			if x0 >= x1 {
				continue
			}
			runLen := x1 - x0
			outBase := yLo*w + x0
			inBase := (yLo+dy-ph)*w + x0 + off
			for y := yLo; y <= yHi; y++ {
				dst := outPlane[outBase:][:runLen]
				src := inPlane[inBase:][:runLen]
				for i, v := range src {
					dst[i] += wv * v
				}
				outBase += w
				inBase += w
			}
		}
	}
}

// convBatchCheck validates batched (B, C, D, H, W) geometry against the
// shared weights and returns the unpacked dimensions.
func convBatchCheck(out, in, weight *Tensor) (batch, cin, d, h, w, cout, kd, kh, kw int) {
	if len(in.Shape) != 5 || len(out.Shape) != 5 {
		panic(fmt.Sprintf("tensor: Conv3DBatchInto wants 5-d (B,C,D,H,W) tensors, got in %v out %v", in.Shape, out.Shape))
	}
	batch = in.Shape[0]
	cin, d, h, w = in.Shape[1], in.Shape[2], in.Shape[3], in.Shape[4]
	cout = weight.Shape[0]
	if weight.Shape[1] != cin {
		panic(fmt.Sprintf("tensor: Conv3DBatchInto weight expects %d input channels, input has %d", weight.Shape[1], cin))
	}
	kd, kh, kw = weight.Shape[2], weight.Shape[3], weight.Shape[4]
	if out.Shape[0] != batch || out.Shape[1] != cout || out.Shape[2] != d || out.Shape[3] != h || out.Shape[4] != w {
		panic(fmt.Sprintf("tensor: Conv3DBatchInto out shape %v, want (%d,%d,%d,%d,%d)", out.Shape, batch, cout, d, h, w))
	}
	return
}

// convBatchDispatch runs the pooled batched task over nSlices with the
// standard grain policy and releases it. maxBatch limits how many leading
// batch items participate (len(out) may exceed the live batch when a
// reusable scratch tensor is larger than the final partial batch).
func convBatchDispatch(out, in, weight *Tensor, bias []float32, res []float32, ep convEpilogue, maxBatch int) {
	batch, cin, d, h, w, cout, kd, kh, kw := convBatchCheck(out, in, weight)
	if maxBatch > 0 && maxBatch < batch {
		batch = maxBatch
	}
	t := convBatchPool.Get().(*convBatch)
	t.out, t.in, t.w, t.bias, t.res = out.Data, in.Data, weight.Data, bias, res
	t.ep = ep
	t.cout = cout
	t.cin, t.d, t.h, t.wd = cin, d, h, w
	t.kd, t.kh, t.kw = kd, kh, kw
	t.pd, t.ph, t.pw = kd/2, kh/2, kw/2
	var sc *Scratch
	if spanActive(kd, kh, kw) {
		// Span path: stage the live batch into a zero-padded scratch copy so
		// the vector kernel runs border-free (see conv_span.go).
		sc = GetScratch()
		t.pad = sc.Floats(spanPadLen(batch*cin, d, h, w))
		fillPadded(t.pad, in.Data, batch*cin, d, h, w)
		t.span = true
	}
	unitWork := h * w * cin * kd * kh * kw
	grain := 1
	if unitWork < convGrainFlops {
		grain = (convGrainFlops + unitWork - 1) / unitWork
	}
	parallel.InvokeGrain(batch*cout*d, grain, t)
	if sc != nil {
		sc.Put(t.pad)
		sc.Release()
		t.pad, t.span = nil, false
	}
	t.out, t.in, t.w, t.bias, t.res = nil, nil, nil, nil, nil
	convBatchPool.Put(t)
}

// Conv3DBatchInto computes B independent stride-1, same-padded 3-D
// convolutions against shared weights in one dispatch:
//
//	in:     (B, Cin, D, H, W)
//	weight: (Cout, Cin, KD, KH, KW)
//	bias:   len Cout (may be nil)
//	out:    (B, Cout, D, H, W)
//
// Each item's result is bit-exact with Conv3DInto on that item, at every
// batch size and worker count, and the call allocates nothing. batch limits
// processing to the first batch items (0 or >= B processes all of them),
// letting a reusable full-size scratch tensor serve partial final batches.
func Conv3DBatchInto(out, in, weight *Tensor, bias []float32, batch int) {
	convBatchDispatch(out, in, weight, bias, nil, epNone, batch)
}

// Conv3DBatchReLUInto is Conv3DBatchInto with ReLU fused into the output
// write: out = max(0, conv(in)). Bit-exact with Conv3DBatchInto followed by
// ReLUInto, one full output traversal cheaper.
func Conv3DBatchReLUInto(out, in, weight *Tensor, bias []float32, batch int) {
	convBatchDispatch(out, in, weight, bias, nil, epReLU, batch)
}

// Conv3DBatchResReLUInto fuses the residual-module tail into the conv:
// out = max(0, conv(in) + res), with res shaped like out. Bit-exact with
// Conv3DBatchInto, AddInPlace(res), ReLUInto — two full traversals cheaper.
func Conv3DBatchResReLUInto(out, in, weight *Tensor, bias []float32, res *Tensor, batch int) {
	if !SameShape(out, res) {
		panic("tensor: Conv3DBatchResReLUInto residual shape mismatch")
	}
	convBatchDispatch(out, in, weight, bias, res.Data, epResReLU, batch)
}

// asBatch1 views a (C, D, H, W) tensor as (1, C, D, H, W) without copying.
// hdr must be a caller-owned reusable header whose Shape has capacity 5.
func asBatch1(hdr, t *Tensor) *Tensor {
	hdr.Shape = append(hdr.Shape[:0], 1)
	hdr.Shape = append(hdr.Shape, t.Shape...)
	hdr.Data = t.Data
	return hdr
}

var batch1Pool = sync.Pool{New: func() any {
	return &struct{ o, i, r Tensor }{
		o: Tensor{Shape: make([]int, 0, 5)},
		i: Tensor{Shape: make([]int, 0, 5)},
		r: Tensor{Shape: make([]int, 0, 5)},
	}
}}

// Conv3DReLUInto is the single-input fused conv+ReLU: out, in are 4-d
// (C, D, H, W) tensors. Bit-exact with Conv3DInto followed by ReLUInto.
func Conv3DReLUInto(out, in, weight *Tensor, bias []float32) {
	h := batch1Pool.Get().(*struct{ o, i, r Tensor })
	Conv3DBatchReLUInto(asBatch1(&h.o, out), asBatch1(&h.i, in), weight, bias, 0)
	h.o.Data, h.i.Data = nil, nil
	batch1Pool.Put(h)
}

// Conv3DResReLUInto is the single-input fused conv+residual+ReLU:
// out = max(0, conv(in) + res) over 4-d (C, D, H, W) tensors.
func Conv3DResReLUInto(out, in, weight *Tensor, bias []float32, res *Tensor) {
	h := batch1Pool.Get().(*struct{ o, i, r Tensor })
	Conv3DBatchResReLUInto(asBatch1(&h.o, out), asBatch1(&h.i, in), weight, bias, asBatch1(&h.r, res), 0)
	h.o.Data, h.i.Data, h.r.Data = nil, nil, nil
	batch1Pool.Put(h)
}
