package tensor

import (
	"fmt"
	"testing"

	"chaseci/internal/parallel"
	"chaseci/internal/sim"
)

// batchRef computes the unfused reference for a batch: per-item Conv3DInto
// (itself pinned bit-exact to the scalar kernel by TestConv3DIntoMatchesScalar),
// then the requested epilogue as separate full traversals.
func batchRef(in, weight *Tensor, bias []float32, res *Tensor, ep convEpilogue) *Tensor {
	batch, cin := in.Shape[0], in.Shape[1]
	d, h, w := in.Shape[2], in.Shape[3], in.Shape[4]
	cout := weight.Shape[0]
	out := New(batch, cout, d, h, w)
	inItem := New(cin, d, h, w)
	outItem := New(cout, d, h, w)
	for b := 0; b < batch; b++ {
		copy(inItem.Data, in.Data[b*cin*d*h*w:(b+1)*cin*d*h*w])
		Conv3DInto(outItem, inItem, weight, bias)
		if ep == epResReLU {
			resItem := FromData(res.Data[b*cout*d*h*w:(b+1)*cout*d*h*w], cout, d, h, w)
			outItem.AddInPlace(resItem)
		}
		if ep == epReLU || ep == epResReLU {
			ReLUInto(outItem, outItem)
		}
		copy(out.Data[b*cout*d*h*w:], outItem.Data)
	}
	return out
}

// TestConv3DBatchIntoMatchesPerItem sweeps shapes, batch sizes, and worker
// counts, requiring every batched/fused variant to be bit-exact with the
// per-item unfused pipeline.
func TestConv3DBatchIntoMatchesPerItem(t *testing.T) {
	rng := sim.NewRNG(19)
	for _, tc := range convCases {
		for _, batch := range []int{1, 2, 3, 8} {
			in := randTensor(rng, batch, tc.cin, tc.d, tc.h, tc.w)
			weight := randTensor(rng, tc.cout, tc.cin, tc.kd, tc.kh, tc.kw)
			res := randTensor(rng, batch, tc.cout, tc.d, tc.h, tc.w)
			bias := make([]float32, tc.cout)
			for i := range bias {
				bias[i] = float32(rng.NormFloat64())
			}
			wantPlain := batchRef(in, weight, bias, nil, epNone)
			wantReLU := batchRef(in, weight, bias, nil, epReLU)
			wantRes := batchRef(in, weight, bias, res, epResReLU)
			for _, workers := range []int{1, 2, 8} {
				t.Run(fmt.Sprintf("%+v/batch=%d/workers=%d", tc, batch, workers), func(t *testing.T) {
					prev := parallel.SetWorkers(workers)
					defer parallel.SetWorkers(prev)
					out := New(batch, tc.cout, tc.d, tc.h, tc.w)
					for name, pair := range map[string]struct {
						run  func()
						want *Tensor
					}{
						"plain":   {func() { Conv3DBatchInto(out, in, weight, bias, 0) }, wantPlain},
						"relu":    {func() { Conv3DBatchReLUInto(out, in, weight, bias, 0) }, wantReLU},
						"resrelu": {func() { Conv3DBatchResReLUInto(out, in, weight, bias, res, 0) }, wantRes},
					} {
						out.Fill(999) // stale garbage must be overwritten
						pair.run()
						for i := range pair.want.Data {
							if out.Data[i] != pair.want.Data[i] {
								t.Fatalf("%s element %d: got %v, want %v (not bit-exact)", name, i, out.Data[i], pair.want.Data[i])
							}
						}
					}
					// Nil-bias path.
					out.Fill(999)
					Conv3DBatchInto(out, in, weight, nil, 0)
					wantNB := batchRef(in, weight, nil, nil, epNone)
					for i := range wantNB.Data {
						if out.Data[i] != wantNB.Data[i] {
							t.Fatalf("nil-bias element %d: got %v, want %v", i, out.Data[i], wantNB.Data[i])
						}
					}
				})
			}
		}
	}
}

// TestConv3DBatchIntoPartialBatch checks the batch limit: only the first
// `live` items are computed, the tail of the scratch tensor is untouched.
func TestConv3DBatchIntoPartialBatch(t *testing.T) {
	rng := sim.NewRNG(23)
	in := randTensor(rng, 4, 2, 3, 5, 5)
	weight := randTensor(rng, 3, 2, 3, 3, 3)
	bias := []float32{0.1, -0.2, 0.3}
	want := batchRef(in, weight, bias, nil, epNone)
	out := New(4, 3, 3, 5, 5)
	out.Fill(-7)
	Conv3DBatchInto(out, in, weight, bias, 2)
	itemN := 3 * 3 * 5 * 5
	for i := 0; i < 2*itemN; i++ {
		if out.Data[i] != want.Data[i] {
			t.Fatalf("live element %d: got %v, want %v", i, out.Data[i], want.Data[i])
		}
	}
	for i := 2 * itemN; i < len(out.Data); i++ {
		if out.Data[i] != -7 {
			t.Fatalf("dead element %d was touched: %v", i, out.Data[i])
		}
	}
}

// TestConv3DReLUIntoMatchesUnfused pins the 4-d fused wrappers.
func TestConv3DReLUIntoMatchesUnfused(t *testing.T) {
	rng := sim.NewRNG(29)
	in := randTensor(rng, 3, 4, 8, 9)
	weight := randTensor(rng, 5, 3, 3, 3, 3)
	res := randTensor(rng, 5, 4, 8, 9)
	bias := make([]float32, 5)
	for i := range bias {
		bias[i] = float32(rng.NormFloat64())
	}
	want := New(5, 4, 8, 9)
	Conv3DInto(want, in, weight, bias)
	ReLUInto(want, want)
	got := New(5, 4, 8, 9)
	Conv3DReLUInto(got, in, weight, bias)
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("fused relu element %d: got %v, want %v", i, got.Data[i], want.Data[i])
		}
	}

	Conv3DInto(want, in, weight, bias)
	want.AddInPlace(res)
	ReLUInto(want, want)
	Conv3DResReLUInto(got, in, weight, bias, res)
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("fused res-relu element %d: got %v, want %v", i, got.Data[i], want.Data[i])
		}
	}
}

// TestConv3DBatchIntoAllocFree guards the allocation contract of the whole
// fused family: steady-state batched dispatches must not allocate.
func TestConv3DBatchIntoAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector; alloc pins run in the non-race job")
	}
	rng := sim.NewRNG(31)
	in := randTensor(rng, 4, 2, 3, 7, 7)
	weight := randTensor(rng, 4, 2, 3, 3, 3)
	res := randTensor(rng, 4, 4, 3, 7, 7)
	bias := make([]float32, 4)
	out := New(4, 4, 3, 7, 7)
	Conv3DBatchResReLUInto(out, in, weight, bias, res, 0) // warm pools
	allocs := testing.AllocsPerRun(50, func() {
		Conv3DBatchInto(out, in, weight, bias, 0)
		Conv3DBatchReLUInto(out, in, weight, bias, 0)
		Conv3DBatchResReLUInto(out, in, weight, bias, res, 0)
	})
	if allocs != 0 {
		t.Fatalf("batched conv steady-state allocs/op = %v, want 0", allocs)
	}
}

// BenchmarkConv3DBatchInto measures the batched kernel amortizing weight
// traffic over 8 FFN-sized FOVs (compare against 8x BenchmarkConv3DInto).
func BenchmarkConv3DBatchInto(b *testing.B) {
	rng := sim.NewRNG(1)
	const batch = 8
	in := randTensor(rng, batch, 6, 3, 7, 7)
	w := randTensor(rng, 6, 6, 3, 3, 3)
	bias := make([]float32, 6)
	out := New(batch, 6, 3, 7, 7)
	Conv3DBatchInto(out, in, w, bias, 0) // warm pools
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Conv3DBatchInto(out, in, w, bias, 0)
	}
}

// BenchmarkConv3DBatchReLUInto measures the fused conv+ReLU epilogue.
func BenchmarkConv3DBatchReLUInto(b *testing.B) {
	rng := sim.NewRNG(1)
	const batch = 8
	in := randTensor(rng, batch, 6, 3, 7, 7)
	w := randTensor(rng, 6, 6, 3, 3, 3)
	bias := make([]float32, 6)
	out := New(batch, 6, 3, 7, 7)
	Conv3DBatchReLUInto(out, in, w, bias, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Conv3DBatchReLUInto(out, in, w, bias, 0)
	}
}
