//go:build amd64

package tensor

// qconv33Span4 computes a 4-row x 8-column block of one (b, oc, z) output
// slice of the int8 conv, requantized to f32 (quant_amd64.s): each int32
// accumulator acc becomes scale*float32(acc) + offs before the masked
// store. p32 points at the padded 3-byte-window dword for the block's
// (ic=0, dz=0, dy=0) tap; wp at the oc's cin*9 packed tap-row weights.
// Strides are in elements. nrows in [1,4] limits stored rows; mask points
// at the 8-lane store mask. Loads may overrun into adjacent padded
// rows/planes and the buffer slack; masked/skipped lanes are never stored.
// Requires AVX-512 VNNI (+VL).
//
//go:noescape
func qconv33Span4(out *float32, p32, wp *uint32, cin, pch, pplane, pw, ow, nrows int64, mask *int32, scale, offs float32)

// minMaxF32 folds n floats (positive multiple of 8, no NaNs) into running
// min/max accumulators that start at zero, matching the scalar scan's
// zero-initialized lo/hi.
//
//go:noescape
func minMaxF32(src *float32, n int64) (lo, hi float32)

// quantU8 quantizes n floats (positive multiple of 32) to uint8 codes:
// clamp(0, 255, roundNearestEven(src[i]*inv + zf)). Bit-identical to the
// Go tail in quantCodes.
//
//go:noescape
func quantU8(dst *uint8, src *float32, n int64, inv, zf float32)

// pack24 cuts 8 packed 3-byte x-windows per iteration from src into dst
// dwords; the caller guarantees the last 16-byte read is in bounds.
//
//go:noescape
func pack24(dst *uint32, src *uint8, iters int64)
