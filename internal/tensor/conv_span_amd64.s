//go:build amd64

#include "textflag.h"

// func conv33Span(out, pin, w *float32, cin, pch, pplane, pw, ow, nrows int64, mask *int32, bias float32)
//
// 4-row x 8-lane span block over zero-padded input. Accumulators Y0-Y3 hold
// four consecutive output rows; the full ic -> dz -> dy tap loop runs with
// them live, each tap-row broadcasting its three coefficients (Y4-Y6) and
// issuing separate VMULPS+VADDPS per row so every lane's float operation
// sequence matches the scalar kernel (ic -> dz -> dy -> dx, no FMA).
// Stores are column-masked (VMASKMOVPS) and row-limited by nrows.
TEXT ·conv33Span(SB), NOSPLIT, $0-84
	MOVQ out+0(FP), DI
	MOVQ pin+8(FP), BX
	MOVQ w+16(FP), DX
	MOVQ pch+32(FP), R13
	SHLQ $2, R13
	MOVQ pplane+40(FP), R12
	SHLQ $2, R12
	MOVQ pw+48(FP), R11
	SHLQ $2, R11

	VBROADCASTSS bias+80(FP), Y0
	VMOVAPS      Y0, Y1
	VMOVAPS      Y0, Y2
	VMOVAPS      Y0, Y3

	MOVQ cin+24(FP), R8

ic_loop:
	MOVQ BX, AX
	MOVQ $3, R9

dz_loop:
	MOVQ AX, SI
	MOVQ $3, R10

dy_loop:
	VBROADCASTSS (DX), Y4
	VBROADCASTSS 4(DX), Y5
	VBROADCASTSS 8(DX), Y6
	ADDQ         $12, DX
	MOVQ         SI, CX

	// row 0 -> Y0
	VMOVUPS (CX), Y7
	VMULPS  Y7, Y4, Y8
	VADDPS  Y8, Y0, Y0
	VMOVUPS 4(CX), Y7
	VMULPS  Y7, Y5, Y8
	VADDPS  Y8, Y0, Y0
	VMOVUPS 8(CX), Y7
	VMULPS  Y7, Y6, Y8
	VADDPS  Y8, Y0, Y0
	ADDQ    R11, CX

	// row 1 -> Y1
	VMOVUPS (CX), Y7
	VMULPS  Y7, Y4, Y8
	VADDPS  Y8, Y1, Y1
	VMOVUPS 4(CX), Y7
	VMULPS  Y7, Y5, Y8
	VADDPS  Y8, Y1, Y1
	VMOVUPS 8(CX), Y7
	VMULPS  Y7, Y6, Y8
	VADDPS  Y8, Y1, Y1
	ADDQ    R11, CX

	// row 2 -> Y2
	VMOVUPS (CX), Y7
	VMULPS  Y7, Y4, Y8
	VADDPS  Y8, Y2, Y2
	VMOVUPS 4(CX), Y7
	VMULPS  Y7, Y5, Y8
	VADDPS  Y8, Y2, Y2
	VMOVUPS 8(CX), Y7
	VMULPS  Y7, Y6, Y8
	VADDPS  Y8, Y2, Y2
	ADDQ    R11, CX

	// row 3 -> Y3
	VMOVUPS (CX), Y7
	VMULPS  Y7, Y4, Y8
	VADDPS  Y8, Y3, Y3
	VMOVUPS 4(CX), Y7
	VMULPS  Y7, Y5, Y8
	VADDPS  Y8, Y3, Y3
	VMOVUPS 8(CX), Y7
	VMULPS  Y7, Y6, Y8
	VADDPS  Y8, Y3, Y3

	ADDQ R11, SI
	DECQ R10
	JNZ  dy_loop

	ADDQ R12, AX
	DECQ R9
	JNZ  dz_loop

	ADDQ R13, BX
	DECQ R8
	JNZ  ic_loop

	// Masked stores for nrows rows.
	MOVQ    mask+72(FP), CX
	VMOVDQU (CX), Y9
	MOVQ    ow+56(FP), R8
	SHLQ    $2, R8
	MOVQ    nrows+64(FP), CX

	VMASKMOVPS Y0, Y9, (DI)
	DECQ       CX
	JZ         done
	ADDQ       R8, DI
	VMASKMOVPS Y1, Y9, (DI)
	DECQ       CX
	JZ         done
	ADDQ       R8, DI
	VMASKMOVPS Y2, Y9, (DI)
	DECQ       CX
	JZ         done
	ADDQ       R8, DI
	VMASKMOVPS Y3, Y9, (DI)

done:
	VZEROUPPER
	RET
