//go:build amd64

package tensor

// conv33Span computes a 4-row x 8-column block of one (b, oc, z) output
// slice over zero-padded input (conv_span_amd64.s). out points at the
// block's first output element; pin points at the padded input element that
// is the block's (ic=0, dz=0, dy=0, dx=0) tap; w points at the oc's cin*27
// weights. Strides are in elements. nrows in [1,4] limits stored rows; mask
// points at the 8-lane column store mask. Loads may overrun into adjacent
// padded rows/planes and the buffer slack; masked/skipped lanes are never
// stored. Requires AVX2.
//
//go:noescape
func conv33Span(out, pin, w *float32, cin, pch, pplane, pw, ow, nrows int64, mask *int32, bias float32)
