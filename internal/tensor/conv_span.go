package tensor

// SIMD-shaped span path for the dominant 3x3x3 conv geometry.
//
// The scalar batched engine (conv_batch.go) is already at the scalar FP
// throughput floor: each output element needs cin*27 multiply-accumulates and
// the plane walk issues exactly one MULSS+ADDSS per tap. Going faster
// requires wider issue, so the span path restructures the kernel around
// contiguous x-runs that map onto 8-wide vector registers:
//
//   - The input is copied once per dispatch into a zero-padded
//     (B*Cin, D+2, H+2, W+2) scratch buffer. Padding removes every border
//     conditional: all cin*27 taps are applied to every output element, with
//     out-of-image taps reading exact zeros. IEEE-754 guarantees x + w*0 == x
//     for every finite x (the only representational wiggle is the sign of an
//     exact zero, and -0.0 == +0.0), so the padded accumulation is
//     value-exact with the skip-based scalar walk. The copy is O(input),
//     ~1/(cin*27) of the kernel's FLOPs.
//   - conv33Span (conv_span_amd64.s) computes a 4-row x 8-column output
//     block: four 8-lane accumulators live in registers across the entire
//     ic -> dz -> dy tap loop, each tap-row hoisting its three coefficients
//     into broadcast registers and issuing three VMULPS+VADDPS per row. Every
//     lane accumulates its taps in the scalar kernel's ic -> dz -> dy -> dx
//     order with separate multiply and add (no FMA contraction), so each
//     element's float operation sequence — and therefore its rounding — is
//     identical to the scalar engine's.
//   - Column tails store through a lane mask (VMASKMOVPS); row tails skip
//     trailing accumulator stores. Loads may overrun into neighboring padded
//     rows or the buffer's slack tail; those lanes are never stored.
//
// The scalar engine remains the fallback: non-amd64 builds, CPUs without
// AVX2, the `nosimd` build tag, and SetSpanKernels(false) all route through
// it, and the equivalence sweeps in conv_span_test.go pin the two paths to
// exact equality.

// spanEnabled gates the span path at runtime; spanDefault comes from the
// span_on/span_off build-tag pair (`nosimd` selects the scalar engine).
var spanEnabled = spanDefault

// SetSpanKernels enables or disables the SIMD span conv path, returning the
// previous setting. It exists for fallback configuration and equivalence
// tests; it must not be called concurrently with conv dispatches.
func SetSpanKernels(on bool) bool {
	prev := spanEnabled
	spanEnabled = on
	return prev
}

// SpanKernelsActive reports whether conv dispatches with 3x3x3 weights will
// take the SIMD span path (enabled and supported by the CPU).
func SpanKernelsActive() bool { return spanEnabled && hasAVX2 }

// spanActive reports whether one dispatch with the given kernel geometry
// takes the span path.
func spanActive(kd, kh, kw int) bool {
	return spanEnabled && hasAVX2 && kd == 3 && kh == 3 && kw == 3
}

// spanMasks[k] has the first k of 8 store lanes enabled.
var spanMasks = func() (m [9][8]int32) {
	for k := 1; k <= 8; k++ {
		for l := 0; l < k; l++ {
			m[k][l] = -1
		}
	}
	return
}()

// spanPadLen sizes the padded scratch for nch = B*Cin channels, plus slack
// covering the widest out-of-block read the 4x8 kernel can issue (three rows
// beyond the last padded plane, eight lanes plus two taps beyond a row).
func spanPadLen(nch, d, h, w int) int {
	pw, ph := w+2, h+2
	return nch*(d+2)*ph*pw + 4*pw + 16
}

// fillPadded copies nch (d,h,w) channels into the interior of the zeroed
// padded buffer.
func fillPadded(pad, in []float32, nch, d, h, w int) {
	pw, ph := w+2, h+2
	pplane := ph * pw
	pch := (d + 2) * pplane
	hw := h * w
	for c := 0; c < nch; c++ {
		src := in[c*d*hw:]
		dst := pad[c*pch+pplane+pw+1:]
		for z := 0; z < d; z++ {
			sp := src[z*hw:]
			dp := dst[z*pplane:]
			for y := 0; y < h; y++ {
				copy(dp[y*pw:y*pw+w], sp[y*w:y*w+w])
			}
		}
	}
}

// runSpan processes flattened (b, oc, z) output slices through the asm span
// kernel. Slice decomposition, bias init, and the fused epilogues match
// convBatch.Run exactly; only the tap accumulation is restructured.
func (t *convBatch) runSpan(start, end int) {
	cin, d, h, w := t.cin, t.d, t.h, t.wd
	hw := h * w
	chSize := d * hw
	pw, ph := w+2, h+2
	pplane := ph * pw
	pch := (d + 2) * pplane
	for u := start; u < end; u++ {
		b, rem := u/(t.cout*d), u%(t.cout*d)
		oc, z := rem/d, rem%d
		var bv float32
		if t.bias != nil {
			bv = t.bias[oc]
		}
		sliceBase := (b*t.cout + oc) * chSize
		outPlane := t.out[sliceBase+z*hw:][:hw]
		padCh := t.pad[b*cin*pch:]
		wOC := &t.w[oc*cin*27]
		for yb := 0; yb < h; yb += 4 {
			nrows := h - yb
			if nrows > 4 {
				nrows = 4
			}
			for xb := 0; xb < w; xb += 8 {
				k := w - xb
				if k > 8 {
					k = 8
				}
				conv33Span(
					&outPlane[yb*w+xb],
					&padCh[z*pplane+yb*pw+xb],
					wOC,
					int64(cin), int64(pch), int64(pplane), int64(pw), int64(w),
					int64(nrows), &spanMasks[k][0], bv)
			}
		}
		switch t.ep {
		case epReLU:
			for i, v := range outPlane {
				if v < 0 {
					outPlane[i] = 0
				}
			}
		case epResReLU:
			resPlane := t.res[sliceBase+z*hw:][:hw]
			for i := range outPlane {
				v := outPlane[i] + resPlane[i]
				if v < 0 {
					v = 0
				}
				outPlane[i] = v
			}
		}
	}
}
