package tensor

import (
	"math"
	"testing"

	"chaseci/internal/parallel"
	"chaseci/internal/sim"
)

// Weight round-trip: dequantized codes must sit within half a quantization
// step of the originals, per output channel.
func TestQuantizeWeightsRoundTrip(t *testing.T) {
	rng := sim.NewRNG(3)
	w := randTensor(rng, 4, 3, 3, 3, 3)
	q := QuantizeWeights(w)
	deq := q.Dequantize()
	per := 3 * 27
	for oc := 0; oc < 4; oc++ {
		var maxAbs float64
		for _, v := range w.Data[oc*per:][:per] {
			if a := math.Abs(float64(v)); a > maxAbs {
				maxAbs = a
			}
		}
		step := maxAbs / 127
		for i, v := range w.Data[oc*per:][:per] {
			got := float64(deq.Data[oc*per+i])
			if diff := math.Abs(got - float64(v)); diff > step/2+1e-12 {
				t.Fatalf("oc %d idx %d: |%g - %g| = %g exceeds half-step %g", oc, i, got, v, diff, step/2)
			}
		}
	}
}

// Degenerate channels: all-zero, denormal-magnitude, and extreme-magnitude
// weights must quantize without NaN/Inf and round-trip within bounds.
func TestQuantizeWeightsEdgeChannels(t *testing.T) {
	w := New(4, 1, 3, 3, 3)
	// oc 0: all zeros (stays zero).
	// oc 1: denormal magnitudes.
	for i := 0; i < 27; i++ {
		w.Data[27+i] = float32(math.Float32frombits(uint32(i + 1))) // tiny denormals
	}
	// oc 2: extreme magnitudes near f32 max.
	for i := 0; i < 27; i++ {
		w.Data[54+i] = float32(3e38) * float32(1-2*(i%2))
	}
	// oc 3: one dominant weight drowning the rest.
	w.Data[81] = 1000
	w.Data[82] = 1e-3
	q := QuantizeWeights(w)
	if q.Scales[0] != 0 || q.SumQ[0] != 0 {
		t.Fatalf("all-zero channel: scale %g sumq %d, want 0, 0", q.Scales[0], q.SumQ[0])
	}
	deq := q.Dequantize()
	for i, v := range deq.Data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("dequantized weight %d is %g", i, v)
		}
	}
	for i := 0; i < 27; i++ {
		if deq.Data[i] != 0 {
			t.Fatalf("zero channel dequantizes to %g at %d", deq.Data[i], i)
		}
	}
	// The dominant weight must survive at full precision relative to scale.
	step := float64(1000) / 127
	if diff := math.Abs(float64(deq.Data[81]) - 1000); diff > step/2 {
		t.Fatalf("dominant weight round-trips to %g", deq.Data[81])
	}
	// The drowned weight quantizes to 0 — that is the documented tradeoff.
	if deq.Data[82] != 0 {
		t.Fatalf("drowned weight should quantize to 0, got %g", deq.Data[82])
	}
	// Packed windows must agree with raw codes.
	for oc := 0; oc < 4; oc++ {
		for r := 0; r < 9; r++ {
			p := q.Packed[oc*9+r]
			for j := 0; j < 3; j++ {
				if int8(p>>(8*j)) != q.W[oc*27+r*3+j] {
					t.Fatalf("packed window oc %d row %d byte %d mismatch", oc, r, j)
				}
			}
			if p>>24 != 0 {
				t.Fatalf("packed window oc %d row %d byte 3 not zero", oc, r)
			}
		}
	}
}

func runBothQuantEngines(t *testing.T, sh spanShape, ep convEpilogue) (asm, scalar *Tensor) {
	t.Helper()
	rng := sim.NewRNG(uint64(17*sh.b + 5*sh.cin + sh.d + sh.h + sh.w))
	in := randTensor(rng, sh.b, sh.cin, sh.d, sh.h, sh.w)
	w := randTensor(rng, sh.cout, sh.cin, 3, 3, 3)
	res := randTensor(rng, sh.b, sh.cout, sh.d, sh.h, sh.w)
	bias := make([]float32, sh.cout)
	for i := range bias {
		bias[i] = float32(rng.NormFloat64())
	}
	qw := QuantizeWeights(w)
	asm = New(sh.b, sh.cout, sh.d, sh.h, sh.w)
	scalar = New(sh.b, sh.cout, sh.d, sh.h, sh.w)
	run := func(out *Tensor) {
		switch ep {
		case epReLU:
			Conv3DBatchQReLUInto(out, in, qw, bias, 0)
		case epResReLU:
			Conv3DBatchQResReLUInto(out, in, qw, bias, res, 0)
		default:
			Conv3DBatchQInto(out, in, qw, bias, 0)
		}
	}
	prev := SetQuantAsm(true)
	run(asm)
	SetQuantAsm(false)
	run(scalar)
	SetQuantAsm(prev)
	return asm, scalar
}

// The VNNI kernel and the scalar int32 engine accumulate the same integers,
// so their requantized outputs must be bit-identical across geometries,
// worker counts, and epilogues.
func TestQuantAsmMatchesScalar(t *testing.T) {
	if !QuantAsmActive() {
		t.Skip("VNNI int8 kernels unavailable on this CPU/build")
	}
	defer parallel.SetWorkers(parallel.SetWorkers(1))
	for _, workers := range []int{1, 2, 8} {
		parallel.SetWorkers(workers)
		for _, sh := range spanShapes {
			for _, ep := range []convEpilogue{epNone, epReLU, epResReLU} {
				asm, scalar := runBothQuantEngines(t, sh, ep)
				for i := range asm.Data {
					if asm.Data[i] != scalar.Data[i] {
						t.Fatalf("w%d %v ep%d: asm[%d]=%g scalar[%d]=%g",
							workers, sh, ep, i, asm.Data[i], i, scalar.Data[i])
					}
				}
			}
		}
	}
}

// Per-slot activation quantization makes each item's int8 result independent
// of batch grouping: slicing the same inputs into batches of 1 must
// reproduce the batched result bit-for-bit.
func TestQuantBatchInvariance(t *testing.T) {
	rng := sim.NewRNG(23)
	const B, cin, cout, d, h, w = 5, 2, 3, 3, 7, 7
	in := randTensor(rng, B, cin, d, h, w)
	wt := randTensor(rng, cout, cin, 3, 3, 3)
	bias := []float32{0.1, -0.2, 0.3}
	qw := QuantizeWeights(wt)
	batched := New(B, cout, d, h, w)
	Conv3DBatchQReLUInto(batched, in, qw, bias, 0)
	chIn, chOut := cin*d*h*w, cout*d*h*w
	for b := 0; b < B; b++ {
		one := &Tensor{Shape: []int{1, cin, d, h, w}, Data: in.Data[b*chIn:][:chIn]}
		out1 := New(1, cout, d, h, w)
		Conv3DBatchQReLUInto(out1, one, qw, bias, 0)
		for i := range out1.Data {
			if out1.Data[i] != batched.Data[b*chOut+i] {
				t.Fatalf("slot %d idx %d: batch1 %g batched %g", b, i, out1.Data[i], batched.Data[b*chOut+i])
			}
		}
	}
}

// End-to-end error bound of the int8 conv against the f32 reference: each
// output must sit within the analytic bound from the two quantization steps.
func TestQuantConvErrorBound(t *testing.T) {
	rng := sim.NewRNG(29)
	for _, sh := range []spanShape{{1, 2, 2, 3, 7, 7}, {2, 8, 8, 5, 9, 9}} {
		in := randTensor(rng, sh.b, sh.cin, sh.d, sh.h, sh.w)
		w := randTensor(rng, sh.cout, sh.cin, 3, 3, 3)
		bias := make([]float32, sh.cout)
		qw := QuantizeWeights(w)
		ref := New(sh.b, sh.cout, sh.d, sh.h, sh.w)
		got := New(sh.b, sh.cout, sh.d, sh.h, sh.w)
		Conv3DBatchInto(ref, in, w, bias, 0)
		Conv3DBatchQInto(got, in, qw, bias, 0)
		// Bound: cin*27 taps, each with error <= |w|max*saIn/2 + |a|max*stepW/2
		// plus cross terms; use a conservative analytic envelope.
		var aMax, wMax float64
		for _, v := range in.Data {
			if a := math.Abs(float64(v)); a > aMax {
				aMax = a
			}
		}
		for _, v := range w.Data {
			if a := math.Abs(float64(v)); a > wMax {
				wMax = a
			}
		}
		saMax := 2 * aMax / 255 // widest per-slot step
		stepW := wMax / 127
		taps := float64(sh.cin * 27)
		bound := taps * (wMax*saMax/2 + aMax*stepW/2 + saMax*stepW/4)
		bound += 1e-4 // float accumulation slack
		for i := range ref.Data {
			if diff := math.Abs(float64(got.Data[i]) - float64(ref.Data[i])); diff > bound {
				t.Fatalf("%v idx %d: int8 %g vs f32 %g, |diff| %g > bound %g",
					sh, i, got.Data[i], ref.Data[i], diff, bound)
			}
		}
	}
}

// Steady-state quantized dispatches must not allocate.
func TestQuantConvAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc bounds are meaningless under -race")
	}
	rng := sim.NewRNG(31)
	in := randTensor(rng, 8, 6, 3, 7, 7)
	w := randTensor(rng, 6, 6, 3, 3, 3)
	bias := make([]float32, 6)
	qw := QuantizeWeights(w)
	out := New(8, 6, 3, 7, 7)
	Conv3DBatchQReLUInto(out, in, qw, bias, 0) // warm pools
	allocs := testing.AllocsPerRun(50, func() {
		Conv3DBatchQReLUInto(out, in, qw, bias, 0)
	})
	if allocs != 0 {
		t.Fatalf("quantized conv allocates %.1f/op, want 0", allocs)
	}
}

func BenchmarkConv3DBatchQInto(b *testing.B) {
	rng := sim.NewRNG(37)
	in := randTensor(rng, 8, 6, 3, 7, 7)
	w := randTensor(rng, 6, 6, 3, 3, 3)
	bias := make([]float32, 6)
	qw := QuantizeWeights(w)
	out := New(8, 6, 3, 7, 7)
	Conv3DBatchQInto(out, in, qw, bias, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Conv3DBatchQInto(out, in, qw, bias, 0)
	}
}

// TestQuantHelpersMatchReference pins the AVX2 quantization helpers
// (minMaxSpan, quantCodes, buildP32) against straightforward scalar
// references across sizes that exercise both the vector main loops and the
// tails, including negative, huge, and tiny values.
func TestQuantHelpersMatchReference(t *testing.T) {
	rng := sim.NewRNG(77)
	for _, n := range []int{1, 2, 7, 8, 9, 31, 32, 33, 63, 64, 100, 257, 1024} {
		src := make([]float32, n)
		for i := range src {
			switch i % 7 {
			case 0:
				src[i] = float32(rng.NormFloat64())
			case 3:
				src[i] = -float32(rng.Float64()) * 100
			case 5:
				src[i] = float32(rng.Float64()) * 1e-5
			default:
				src[i] = float32(rng.Float64()) * 50
			}
		}

		lo, hi := minMaxSpan(src)
		var wlo, whi float32
		for _, v := range src {
			if v < wlo {
				wlo = v
			}
			if v > whi {
				whi = v
			}
		}
		if lo != wlo || hi != whi {
			t.Fatalf("n=%d: minMaxSpan = (%v, %v), want (%v, %v)", n, lo, hi, wlo, whi)
		}

		span := float64(hi) - float64(lo)
		sa := span / 255
		if span == 0 {
			sa = 1
		}
		zu := int32(math.Round(-float64(lo) / sa))
		inv, zf := float32(1/sa), float32(zu)
		got := make([]uint8, n)
		quantCodes(got, src, inv, zf)
		for i, v := range src {
			u := int32(math.RoundToEven(float64(v*inv + zf)))
			if u < 0 {
				u = 0
			} else if u > 255 {
				u = 255
			}
			if got[i] != uint8(u) {
				t.Fatalf("n=%d: quantCodes[%d] = %d, want %d (v=%v)", n, i, got[i], u, v)
			}
		}

		u8 := make([]uint8, n)
		for i := range u8 {
			u8[i] = uint8(rng.Uint64())
		}
		p32 := make([]uint32, n)
		buildP32(p32, u8)
		for i := range p32 {
			var want uint32
			if i < n-2 {
				want = uint32(u8[i]) | uint32(u8[i+1])<<8 | uint32(u8[i+2])<<16
			}
			if p32[i] != want {
				t.Fatalf("n=%d: buildP32[%d] = %#x, want %#x", n, i, p32[i], want)
			}
		}
	}
}
