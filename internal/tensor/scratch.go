package tensor

import "sync"

// Scratch is a small arena of reusable float32 buffers, keyed by exact
// length. Kernels that need temporaries (per-chunk gradient partials, FOV
// extracts, worker-private canvases) borrow buffers with Floats and return
// them with Put; whole arenas recycle through a sync.Pool via GetScratch /
// Release, so steady-state use allocates nothing.
//
// A Scratch is not safe for concurrent use; parallel kernels give each
// worker its own (or pre-borrow buffers before fanning out).
type Scratch struct {
	free map[int][][]float32
}

var scratchPool = sync.Pool{
	New: func() any { return &Scratch{free: make(map[int][][]float32)} },
}

// GetScratch borrows an arena from the shared pool.
func GetScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// Release returns the arena (and its buffers) to the shared pool.
func (s *Scratch) Release() { scratchPool.Put(s) }

// Floats returns a zeroed buffer of exactly n elements, reusing a previously
// Put buffer when one of that length is free.
func (s *Scratch) Floats(n int) []float32 {
	if l := s.free[n]; len(l) > 0 {
		b := l[len(l)-1]
		s.free[n] = l[:len(l)-1]
		for i := range b {
			b[i] = 0
		}
		return b
	}
	return make([]float32, n)
}

// Put returns a buffer obtained from Floats to the arena.
func (s *Scratch) Put(b []float32) {
	if cap(b) == 0 {
		return
	}
	b = b[:cap(b)]
	s.free[len(b)] = append(s.free[len(b)], b)
}

// Tensor returns a zeroed tensor whose backing array is borrowed from the
// arena. Return the backing with PutTensor when done. (The header itself is
// a fresh allocation; hot kernels that need zero allocs use Floats.)
func (s *Scratch) Tensor(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: s.Floats(n)}
}

// PutTensor returns a Tensor's backing buffer to the arena.
func (s *Scratch) PutTensor(t *Tensor) { s.Put(t.Data) }
