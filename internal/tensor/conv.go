package tensor

import (
	"fmt"
	"sync"

	"chaseci/internal/parallel"
)

// 3-D convolution kernels. The Into variants write into caller-provided
// tensors and allocate nothing in steady state; Conv3D / Conv3DBackward are
// thin allocating wrappers kept for convenience and for callers that do not
// manage scratch.
//
// The forward kernel is the batched engine in conv_batch.go: every output
// element receives its tap contributions in the scalar kernel's
// ic -> dz -> dy -> dx order with the same skip conditions (including the
// register-accumulating 3x3 fast path), so the result is bit-exact with the
// naive loop at every worker count; parallel fan-out shards whole (oc, z)
// slices, each written by exactly one worker.

// convGrainFlops is the approximate mul-add count one dispatch chunk should
// amortize; below it the kernel stays serial.
const convGrainFlops = 16384

func convCheck(in, weight *Tensor) (cin, d, h, w, cout, kd, kh, kw int) {
	cin, d, h, w = in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	cout = weight.Shape[0]
	if weight.Shape[1] != cin {
		panic(fmt.Sprintf("tensor: Conv3D weight expects %d input channels, input has %d", weight.Shape[1], cin))
	}
	kd, kh, kw = weight.Shape[2], weight.Shape[3], weight.Shape[4]
	return
}

// Conv3DInto computes the same stride-1, same-padded 3-D convolution as
// Conv3D but writes into out, which must be (Cout, D, H, W). It performs no
// allocation and its result is bit-exact with the scalar kernel at every
// parallel.SetWorkers count.
func Conv3DInto(out, in, weight *Tensor, bias []float32) {
	_, d, h, w, cout, _, _, _ := convCheck(in, weight)
	if out.Shape[0] != cout || out.Shape[1] != d || out.Shape[2] != h || out.Shape[3] != w {
		panic(fmt.Sprintf("tensor: Conv3DInto out shape %v, want (%d,%d,%d,%d)", out.Shape, cout, d, h, w))
	}
	hdr := batch1Pool.Get().(*struct{ o, i, r Tensor })
	convBatchDispatch(asBatch1(&hdr.o, out), asBatch1(&hdr.i, in), weight, bias, nil, epNone, 0)
	hdr.o.Data, hdr.i.Data = nil, nil
	batch1Pool.Put(hdr)
}

// Conv3D computes a 3-D convolution with stride 1 and symmetric zero
// padding kd/2, kh/2, kw/2 ("same" shape for odd kernels).
//
//	in:     (Cin, D, H, W)
//	weight: (Cout, Cin, KD, KH, KW)
//	bias:   len Cout (may be nil)
//	out:    (Cout, D, H, W)
func Conv3D(in, weight *Tensor, bias []float32) *Tensor {
	_, d, h, w, cout, _, _, _ := convCheck(in, weight)
	out := New(cout, d, h, w)
	Conv3DInto(out, in, weight, bias)
	return out
}

// convBwd is the pooled backward Task: one Run processes a range of output-
// channel shards. Gradients w.r.t. weights and bias are owned per output
// channel and accumulate in scalar order (bit-exact at every worker count);
// the input gradient scatters across channels, so each shard accumulates
// into a private partial that is reduced in deterministic shard order
// afterwards. With more than one shard the reduction reassociates float
// additions, so gradIn matches the scalar kernel to roundoff (~1e-6
// relative), not bit-exactly; at one shard it is bit-exact.
type convBwd struct {
	in, w, gradOut []float32
	gradW          []float32
	gradB          []float32
	partials       [][]float32 // per-shard gradIn partials
	shards         [][2]int    // oc ranges per shard
	cin, d, h, wd  int
	kd, kh, kw     int
	pd, ph, pw     int
}

var convBwdPool = sync.Pool{New: func() any { return new(convBwd) }}

func (t *convBwd) Run(start, end int) {
	for k := start; k < end; k++ {
		rng := t.shards[k]
		t.runShard(rng[0], rng[1], t.partials[k])
	}
}

// runShard accumulates gradients for output channels [oc0, oc1) with the
// original scalar loop structure and order.
func (t *convBwd) runShard(oc0, oc1 int, gradIn []float32) {
	cin, d, h, w := t.cin, t.d, t.h, t.wd
	kd, kh, kw := t.kd, t.kh, t.kw
	pd, ph, pw := t.pd, t.ph, t.pw
	for oc := oc0; oc < oc1; oc++ {
		for z := 0; z < d; z++ {
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					g := t.gradOut[((oc*d+z)*h+y)*w+x]
					if g == 0 {
						continue
					}
					t.gradB[oc] += g
					for ic := 0; ic < cin; ic++ {
						for dz := 0; dz < kd; dz++ {
							iz := z + dz - pd
							if iz < 0 || iz >= d {
								continue
							}
							for dy := 0; dy < kh; dy++ {
								iy := y + dy - ph
								if iy < 0 || iy >= h {
									continue
								}
								wBase := (((oc*cin+ic)*kd+dz)*kh + dy) * kw
								iBase := ((ic*d+iz)*h + iy) * w
								for dx := 0; dx < kw; dx++ {
									ix := x + dx - pw
									if ix < 0 || ix >= w {
										continue
									}
									t.gradW[wBase+dx] += g * t.in[iBase+ix]
									gradIn[iBase+ix] += g * t.w[wBase+dx]
								}
							}
						}
					}
				}
			}
		}
	}
}

// Conv3DBackwardInto computes the gradients of a Conv3D call into
// caller-provided tensors: gradIn (Cin, D, H, W), gradW (same shape as
// weight), and gradB (len Cout). All three are overwritten.
func Conv3DBackwardInto(gradIn, gradW *Tensor, gradB []float32, in, weight, gradOut *Tensor) {
	cin, d, h, w, cout, kd, kh, kw := convCheck(in, weight)
	if !SameShape(gradIn, in) || !SameShape(gradW, weight) || len(gradB) != cout {
		panic("tensor: Conv3DBackwardInto gradient shape mismatch")
	}
	gradIn.Zero()
	gradW.Zero()
	for i := range gradB {
		gradB[i] = 0
	}
	t := convBwdPool.Get().(*convBwd)
	t.in, t.w, t.gradOut = in.Data, weight.Data, gradOut.Data
	t.gradW, t.gradB = gradW.Data, gradB
	t.cin, t.d, t.h, t.wd = cin, d, h, w
	t.kd, t.kh, t.kw = kd, kh, kw
	t.pd, t.ph, t.pw = kd/2, kh/2, kw/2

	// Tiny backward passes stay serial: sharding must be worth at least
	// convGrainFlops of scatter work per output channel.
	unitWork := d * h * w * cin * kd * kh * kw
	if unitWork < convGrainFlops || cout == 1 || parallel.Workers() == 1 {
		// Single shard: accumulate straight into gradIn, bit-exact with the
		// original serial kernel, and allocation-free.
		t.runShard(0, cout, gradIn.Data)
	} else if shards := parallel.Ranges(cout); len(shards) == 1 {
		t.runShard(0, cout, gradIn.Data)
	} else {
		s := GetScratch()
		t.shards = shards
		t.partials = t.partials[:0]
		for range shards {
			t.partials = append(t.partials, s.Floats(len(gradIn.Data)))
		}
		parallel.Invoke(len(shards), t)
		// Deterministic reduction in shard (ascending oc) order.
		for _, p := range t.partials {
			for i, v := range p {
				gradIn.Data[i] += v
			}
			s.Put(p)
		}
		s.Release()
	}
	t.in, t.w, t.gradOut, t.gradW, t.gradB = nil, nil, nil, nil, nil
	t.shards = nil
	for i := range t.partials {
		t.partials[i] = nil
	}
	convBwdPool.Put(t)
}

// Conv3DBackward computes gradients of a Conv3D call: given the forward
// input, weights, and the gradient of the loss w.r.t. the output, it returns
// gradients w.r.t. input, weights, and bias.
func Conv3DBackward(in, weight, gradOut *Tensor) (gradIn, gradW *Tensor, gradB []float32) {
	cin, d, h, w, cout, kd, kh, kw := convCheck(in, weight)
	gradIn = New(cin, d, h, w)
	gradW = New(cout, cin, kd, kh, kw)
	gradB = make([]float32, cout)
	Conv3DBackwardInto(gradIn, gradW, gradB, in, weight, gradOut)
	return gradIn, gradW, gradB
}
