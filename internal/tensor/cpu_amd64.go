//go:build amd64

package tensor

// Runtime CPU feature detection for the SIMD conv kernels. The span kernels
// need AVX2 (256-bit float lanes plus VPMASKMOV stores); the int8 kernels
// additionally need AVX-512 VNNI with the 256-bit VL forms (VPDPBUSD on ymm).
// Both also require the OS to have enabled the corresponding register state
// (XCR0), which is what distinguishes "CPU has it" from "safe to execute".

//go:noescape
func cpuidEx(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

//go:noescape
func xgetbv0() (eax, edx uint32)

var hasAVX2, hasVNNI = detectCPU()

func detectCPU() (avx2, vnni bool) {
	maxLeaf, _, _, _ := cpuidEx(0, 0)
	if maxLeaf < 7 {
		return false, false
	}
	_, _, ecx1, _ := cpuidEx(1, 0)
	const osxsave, avx = 1 << 27, 1 << 28
	if ecx1&osxsave == 0 || ecx1&avx == 0 {
		return false, false
	}
	xcr0, _ := xgetbv0()
	// XMM (bit 1) and YMM (bit 2) state must be OS-managed for AVX.
	if xcr0&0x6 != 0x6 {
		return false, false
	}
	_, ebx7, ecx7, _ := cpuidEx(7, 0)
	const avx2Bit = 1 << 5
	if ebx7&avx2Bit == 0 {
		return false, false
	}
	avx2 = true
	// AVX-512: opmask (5), upper-256 of zmm0-15 (6), zmm16-31 (7) state.
	if xcr0&0xe0 != 0xe0 {
		return avx2, false
	}
	const avx512f, avx512vl = 1 << 16, 1 << 31
	const avx512vnni = 1 << 11
	vnni = ebx7&avx512f != 0 && ebx7&avx512vl != 0 && ecx7&avx512vnni != 0
	return avx2, vnni
}
