package tensor

import (
	"fmt"
	"testing"

	"chaseci/internal/parallel"
	"chaseci/internal/sim"
)

// The span path must be exactly equal to the scalar engine — same bits in,
// same bits out — across geometries that exercise every block shape: column
// tails (w%8), row tails (h%4), single-plane depths, and channel counts on
// both sides of the grain policy. Sweeps run at several worker counts since
// slices shard across workers.

type spanShape struct{ b, cin, cout, d, h, w int }

var spanShapes = []spanShape{
	{1, 1, 1, 1, 1, 1},
	{1, 1, 1, 1, 1, 7},
	{1, 2, 3, 2, 3, 5},
	{1, 2, 2, 3, 7, 7}, // FFN FOV geometry
	{2, 3, 4, 3, 4, 8},
	{3, 2, 3, 2, 5, 9},
	{1, 2, 2, 4, 6, 17},
	{2, 8, 8, 5, 9, 9}, // default-config module geometry
}

func runBothConvPaths(t *testing.T, sh spanShape, ep convEpilogue, maxBatch int) (span, scalar *Tensor) {
	t.Helper()
	rng := sim.NewRNG(uint64(31*sh.b + 7*sh.cin + sh.d + sh.h + sh.w))
	in := randTensor(rng, sh.b, sh.cin, sh.d, sh.h, sh.w)
	w := randTensor(rng, sh.cout, sh.cin, 3, 3, 3)
	res := randTensor(rng, sh.b, sh.cout, sh.d, sh.h, sh.w)
	bias := make([]float32, sh.cout)
	for i := range bias {
		bias[i] = float32(rng.NormFloat64())
	}
	span = New(sh.b, sh.cout, sh.d, sh.h, sh.w)
	scalar = New(sh.b, sh.cout, sh.d, sh.h, sh.w)
	run := func(out *Tensor) {
		switch ep {
		case epReLU:
			Conv3DBatchReLUInto(out, in, w, bias, maxBatch)
		case epResReLU:
			Conv3DBatchResReLUInto(out, in, w, bias, res, maxBatch)
		default:
			Conv3DBatchInto(out, in, w, bias, maxBatch)
		}
	}
	prev := SetSpanKernels(true)
	run(span)
	SetSpanKernels(false)
	run(scalar)
	SetSpanKernels(prev)
	return span, scalar
}

func TestSpanMatchesScalarSweep(t *testing.T) {
	if !SpanKernelsActive() {
		t.Skip("SIMD span kernels unavailable on this CPU/build")
	}
	defer parallel.SetWorkers(parallel.SetWorkers(1))
	for _, workers := range []int{1, 2, 8} {
		parallel.SetWorkers(workers)
		for _, sh := range spanShapes {
			for _, ep := range []convEpilogue{epNone, epReLU, epResReLU} {
				name := fmt.Sprintf("w%d/%v/ep%d", workers, sh, ep)
				span, scalar := runBothConvPaths(t, sh, ep, 0)
				for i := range span.Data {
					if span.Data[i] != scalar.Data[i] {
						t.Fatalf("%s: span[%d]=%g scalar[%d]=%g", name, i, span.Data[i], i, scalar.Data[i])
					}
				}
			}
		}
	}
}

// Partial batches (maxBatch < B) must only touch the live slots on both
// paths; dead slots keep their previous contents.
func TestSpanPartialBatch(t *testing.T) {
	if !SpanKernelsActive() {
		t.Skip("SIMD span kernels unavailable on this CPU/build")
	}
	sh := spanShape{4, 2, 3, 2, 5, 7}
	span, scalar := runBothConvPaths(t, sh, epReLU, 2)
	live := 2 * sh.cout * sh.d * sh.h * sh.w
	for i := 0; i < live; i++ {
		if span.Data[i] != scalar.Data[i] {
			t.Fatalf("live slot diverges at %d: span=%g scalar=%g", i, span.Data[i], scalar.Data[i])
		}
	}
	for i := live; i < len(span.Data); i++ {
		if span.Data[i] != 0 {
			t.Fatalf("dead slot written at %d: %g", i, span.Data[i])
		}
	}
}

// The 4-d single-input wrappers route through the same dispatch; pin the
// span path against the naive reference conv as well as the scalar engine.
func TestSpanConv3DIntoMatchesScalar(t *testing.T) {
	if !SpanKernelsActive() {
		t.Skip("SIMD span kernels unavailable on this CPU/build")
	}
	rng := sim.NewRNG(11)
	in := randTensor(rng, 3, 4, 6, 11)
	w := randTensor(rng, 2, 3, 3, 3, 3)
	bias := []float32{0.3, -0.7}
	span := New(2, 4, 6, 11)
	scalar := New(2, 4, 6, 11)
	prev := SetSpanKernels(true)
	Conv3DInto(span, in, w, bias)
	SetSpanKernels(false)
	Conv3DInto(scalar, in, w, bias)
	SetSpanKernels(prev)
	for i := range span.Data {
		if span.Data[i] != scalar.Data[i] {
			t.Fatalf("Conv3DInto diverges at %d: span=%g scalar=%g", i, span.Data[i], scalar.Data[i])
		}
	}
}

// Non-3x3x3 kernels must keep taking the scalar engine untouched (the span
// path only claims the 3x3x3 geometry).
func TestSpanLeavesGenericKernelsAlone(t *testing.T) {
	rng := sim.NewRNG(13)
	in := randTensor(rng, 1, 2, 3, 5, 7)
	w := randTensor(rng, 2, 2, 1, 1, 1)
	out := New(1, 2, 3, 5, 7)
	ref := New(1, 2, 3, 5, 7)
	prev := SetSpanKernels(true)
	Conv3DBatchInto(out, in, w, nil, 0)
	SetSpanKernels(false)
	Conv3DBatchInto(ref, in, w, nil, 0)
	SetSpanKernels(prev)
	for i := range out.Data {
		if out.Data[i] != ref.Data[i] {
			t.Fatalf("1x1x1 conv diverges at %d", i)
		}
	}
}

// The span path must stay allocation-free in steady state: the padded copy
// comes from the pooled scratch arena.
func TestSpanAllocFree(t *testing.T) {
	if !SpanKernelsActive() {
		t.Skip("SIMD span kernels unavailable on this CPU/build")
	}
	if raceEnabled {
		t.Skip("alloc bounds are meaningless under -race")
	}
	rng := sim.NewRNG(17)
	in := randTensor(rng, 8, 6, 3, 7, 7)
	w := randTensor(rng, 6, 6, 3, 3, 3)
	bias := make([]float32, 6)
	out := New(8, 6, 3, 7, 7)
	Conv3DBatchReLUInto(out, in, w, bias, 0) // warm pools
	allocs := testing.AllocsPerRun(50, func() {
		Conv3DBatchReLUInto(out, in, w, bias, 0)
	})
	if allocs != 0 {
		t.Fatalf("span conv allocates %.1f/op, want 0", allocs)
	}
}
