package tensor

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"chaseci/internal/parallel"
)

// Int8 quantized inference path for the 3x3x3 conv geometry.
//
// Weights are quantized per output channel with a symmetric [-127, 127]
// range (scale = maxabs/127), so dequantization is a single multiply per
// accumulator. Activations are quantized per batch slot to asymmetric uint8
// with a dynamic range widened to include zero (lo = min(0, min), hi =
// max(0, max)), which keeps the padded border representable as the exact
// zero point and makes each slot's result independent of how the batch is
// grouped — the same input yields bit-identical int8 outputs at every batch
// size and worker count.
//
// The conv accumulates int32 = sum(q_w * u8) over a zero-padded input copy
// (all cin*27 taps applied uniformly), then requantizes:
//
//	out = saIn * scaleW[oc] * (acc - zuIn*SumQ[oc]) + bias[oc]
//
// where SumQ[oc] is the weight-code sum, folding the activation zero point
// out of the accumulator, with the usual fused epilogues (ReLU,
// residual-add+ReLU) applied after requantization.
//
// Two engines compute the accumulators: a hand-written AVX-512 VNNI kernel
// (quant_amd64.s) that consumes precomputed 3-byte activation windows with
// VPDPBUSD, and a pure-Go int32 loop. Integer accumulation is order-free,
// so the two are bit-identical; quant_test.go pins that.

// QuantizedWeights holds per-output-channel symmetric int8 weights for a
// (Cout, Cin, 3, 3, 3) conv, in both raw-code and packed-window form.
type QuantizedWeights struct {
	Cout, Cin int
	W         []int8    // (Cout, Cin, 3, 3, 3) codes, row-major
	Packed    []uint32  // (Cout, Cin*9) tap-row windows: w0 | w1<<8 | w2<<16
	Scales    []float32 // per-oc dequant scale (maxabs/127; 0 for all-zero channels)
	SumQ      []int32   // per-oc code sum, for activation zero-point folding
}

// QuantizeWeights quantizes (Cout, Cin, 3, 3, 3) f32 conv weights to
// per-output-channel symmetric int8. Codes are computed against a float64
// scale so denormal-magnitude channels still round correctly; an all-zero
// channel gets scale 0 and all-zero codes.
func QuantizeWeights(w *Tensor) *QuantizedWeights {
	if len(w.Shape) != 5 || w.Shape[2] != 3 || w.Shape[3] != 3 || w.Shape[4] != 3 {
		panic(fmt.Sprintf("tensor: QuantizeWeights wants (Cout,Cin,3,3,3) weights, got %v", w.Shape))
	}
	cout, cin := w.Shape[0], w.Shape[1]
	per := cin * 27
	q := &QuantizedWeights{
		Cout:   cout,
		Cin:    cin,
		W:      make([]int8, cout*per),
		Packed: make([]uint32, cout*cin*9),
		Scales: make([]float32, cout),
		SumQ:   make([]int32, cout),
	}
	for oc := 0; oc < cout; oc++ {
		ch := w.Data[oc*per:][:per]
		var maxAbs float32
		for _, v := range ch {
			if a := v; a < 0 {
				if -a > maxAbs {
					maxAbs = -a
				}
			} else if a > maxAbs {
				maxAbs = a
			}
		}
		codes := q.W[oc*per:][:per]
		if maxAbs > 0 {
			scale := float64(maxAbs) / 127
			q.Scales[oc] = float32(scale)
			var sum int32
			for i, v := range ch {
				c := int32(math.Round(float64(v) / scale))
				if c > 127 {
					c = 127
				} else if c < -127 {
					c = -127
				}
				codes[i] = int8(c)
				sum += c
			}
			q.SumQ[oc] = sum
		}
		packed := q.Packed[oc*cin*9:][:cin*9]
		for r := 0; r < cin*9; r++ {
			w0, w1, w2 := codes[r*3], codes[r*3+1], codes[r*3+2]
			packed[r] = uint32(uint8(w0)) | uint32(uint8(w1))<<8 | uint32(uint8(w2))<<16
		}
	}
	return q
}

// Dequantize reconstructs the f32 weight tensor the codes represent.
func (q *QuantizedWeights) Dequantize() *Tensor {
	t := New(q.Cout, q.Cin, 3, 3, 3)
	per := q.Cin * 27
	for oc := 0; oc < q.Cout; oc++ {
		s := q.Scales[oc]
		for i, c := range q.W[oc*per:][:per] {
			t.Data[oc*per+i] = s * float32(c)
		}
	}
	return t
}

// quantAsmEnabled gates the VNNI kernel at runtime (the scalar int32 engine
// is bit-identical, so this is a pure performance switch).
var quantAsmEnabled = spanDefault

// SetQuantAsm enables or disables the VNNI int8 kernel, returning the
// previous setting. Not safe concurrently with quantized dispatches.
func SetQuantAsm(on bool) bool {
	prev := quantAsmEnabled
	quantAsmEnabled = on
	return prev
}

// QuantAsmActive reports whether quantized dispatches will use the VNNI
// kernel (enabled and supported by the CPU).
func QuantAsmActive() bool { return quantAsmEnabled && hasVNNI }

// qBuf is the pooled working set for one quantized dispatch: the padded
// uint8 activation image, its packed 3-byte windows, a contiguous quantize
// scratch, and per-slot quantization parameters.
type qBuf struct {
	u8  []uint8
	p32 []uint32
	tmp []uint8 // one slot's codes, quantized contiguously then scattered
	sa  []float32
	zu  []int32
}

var qBufPool = sync.Pool{New: func() any { return new(qBuf) }}

func (q *qBuf) ensure(padLen, batch, chSize int) {
	if cap(q.u8) < padLen {
		q.u8 = make([]uint8, padLen)
	}
	if cap(q.p32) < padLen {
		q.p32 = make([]uint32, padLen)
	}
	if cap(q.tmp) < chSize {
		q.tmp = make([]uint8, chSize)
	}
	if cap(q.sa) < batch {
		q.sa = make([]float32, batch)
		q.zu = make([]int32, batch)
	}
	q.u8 = q.u8[:padLen]
	q.p32 = q.p32[:padLen]
	q.tmp = q.tmp[:chSize]
	q.sa = q.sa[:batch]
	q.zu = q.zu[:batch]
}

// minMaxSpan returns min(0, min(v)) and max(0, max(v)): the slot range
// widened to include zero, so the padded border is exactly representable.
// The AVX2 main loop and the scalar tail fold to identical results (min and
// max are order-free without NaNs).
func minMaxSpan(v []float32) (lo, hi float32) {
	i := 0
	if hasAVX2 {
		if m := len(v) &^ 7; m > 0 {
			lo, hi = minMaxF32(&v[0], int64(m))
			i = m
		}
	}
	for ; i < len(v); i++ {
		if x := v[i]; x < lo {
			lo = x
		} else if x > hi {
			hi = x
		}
	}
	return
}

// quantCodes writes dst[i] = clamp(0, 255, roundNearestEven(src[i]*inv+zf)).
// The arithmetic is plain float32 multiply-then-add (no FMA, no float64
// widening) so the AVX2 kernel (VMULPS+VADDPS+VCVTPS2DQ with saturating
// packs) and this scalar tail produce bit-identical codes.
func quantCodes(dst []uint8, src []float32, inv, zf float32) {
	i := 0
	if hasAVX2 {
		if m := len(src) &^ 31; m > 0 {
			quantU8(&dst[0], &src[0], int64(m), inv, zf)
			i = m
		}
	}
	for ; i < len(src); i++ {
		u := int32(math.RoundToEven(float64(src[i]*inv + zf)))
		if u < 0 {
			u = 0
		} else if u > 255 {
			u = 255
		}
		dst[i] = uint8(u)
	}
}

// quantizeSlots computes each slot's (sa, zu) range and writes its quantized
// channels into the padded uint8 buffer, border and inter-channel padding
// filled with the slot's zero point.
func (q *qBuf) quantizeSlots(in []float32, batch, cin, d, h, w int) {
	chSize := cin * d * h * w
	hw := h * w
	pw, ph := w+2, h+2
	pplane := ph * pw
	pch := (d + 2) * pplane
	for b := 0; b < batch; b++ {
		slot := in[b*chSize:][:chSize]
		lo, hi := minMaxSpan(slot)
		sa := 1.0
		var zu int32
		if span := float64(hi) - float64(lo); span > 0 {
			sa = span / 255
			zu = int32(math.Round(-float64(lo) / sa))
			if zu < 0 {
				zu = 0
			} else if zu > 255 {
				zu = 255
			}
		}
		q.sa[b], q.zu[b] = float32(sa), zu
		block := q.u8[b*cin*pch:][:cin*pch]
		// Fill the block with the zero point at memmove speed (copy doubling).
		block[0] = uint8(zu)
		for n := 1; n < len(block); n *= 2 {
			copy(block[n:], block[:n])
		}
		// Quantize the slot contiguously (one wide pass over the source),
		// then scatter interior rows into the padded block with byte copies.
		quantCodes(q.tmp[:chSize], slot, float32(1/sa), float32(zu))
		for c := 0; c < cin; c++ {
			src := q.tmp[c*d*hw:]
			dst := block[c*pch+pplane+pw+1:]
			for z := 0; z < d; z++ {
				sp := src[z*hw:]
				dp := dst[z*pplane:]
				for y := 0; y < h; y++ {
					copy(dp[y*pw:][:w], sp[y*w:][:w])
				}
			}
		}
	}
	// Slack past the last slot: deterministic zeros (never accumulated into
	// stored lanes, but keeps overrunning loads reproducible).
	for i := batch * cin * pch; i < len(q.u8); i++ {
		q.u8[i] = 0
	}
}

// buildP32 packs each padded cell's 3-byte x-window (the three activations a
// tap-row consumes) into one dword so the VNNI kernel loads 8 windows per
// VMOVDQU. Byte 3 is zero and pairs with the packed weights' zero byte.
// The AVX2 main loop cuts 8 windows per shuffle (pack24); the Go tail cuts
// four from one 8-byte load (intrinsified Uint64).
func buildP32(p32 []uint32, u []uint8) {
	const m = 0xffffff
	n := len(p32)
	i := 0
	if hasAVX2 && n >= 16 {
		iters := (n-16)/8 + 1
		pack24(&p32[0], &u[0], int64(iters))
		i = iters * 8
	}
	for ; i+10 <= n; i += 4 {
		v := binary.LittleEndian.Uint64(u[i:])
		p32[i] = uint32(v) & m
		p32[i+1] = uint32(v>>8) & m
		p32[i+2] = uint32(v>>16) & m
		p32[i+3] = uint32(v>>24) & m
	}
	for ; i < n-2; i++ {
		p32[i] = uint32(u[i]) | uint32(u[i+1])<<8 | uint32(u[i+2])<<16
	}
	for ; i < n; i++ {
		p32[i] = 0
	}
}

// qconvBatch is the pooled quantized-forward Task: one Run processes a range
// of flattened (b, oc, z) output slices.
type qconvBatch struct {
	out, res      []float32
	bias          []float32
	qw            *QuantizedWeights
	u8            []uint8
	p32           []uint32
	sa            []float32
	zu            []int32
	asm           bool
	ep            convEpilogue
	cout          int
	cin, d, h, wd int
}

var qconvPool = sync.Pool{New: func() any { return new(qconvBatch) }}

func (t *qconvBatch) Run(start, end int) {
	cin, d, h, w := t.cin, t.d, t.h, t.wd
	hw := h * w
	chSize := d * hw
	pw, ph := w+2, h+2
	pplane := ph * pw
	pch := (d + 2) * pplane
	for u := start; u < end; u++ {
		b, rem := u/(t.cout*d), u%(t.cout*d)
		oc, z := rem/d, rem%d
		sliceBase := (b*t.cout + oc) * chSize
		outPlane := t.out[sliceBase+z*hw:][:hw]
		// Requantization constants: out = scale*float32(acc) + offs, with the
		// activation zero point and bias folded into offs. Both engines use
		// this exact expression, so they stay bit-identical.
		scale := t.sa[b] * t.qw.Scales[oc]
		corr := t.zu[b] * t.qw.SumQ[oc]
		var bv float32
		if t.bias != nil {
			bv = t.bias[oc]
		}
		offs := bv - scale*float32(corr)
		if t.asm {
			p32Ch := t.p32[b*cin*pch:]
			wOC := &t.qw.Packed[oc*cin*9]
			for yb := 0; yb < h; yb += 4 {
				nrows := h - yb
				if nrows > 4 {
					nrows = 4
				}
				for xb := 0; xb < w; xb += 8 {
					k := w - xb
					if k > 8 {
						k = 8
					}
					qconv33Span4(
						&outPlane[yb*w+xb],
						&p32Ch[z*pplane+yb*pw+xb],
						wOC,
						int64(cin), int64(pch), int64(pplane), int64(pw), int64(w),
						int64(nrows), &spanMasks[k][0], scale, offs)
				}
			}
		} else {
			u8Ch := t.u8[b*cin*pch:]
			wq := t.qw.W[oc*cin*27:][:cin*27]
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					var acc int32
					wi := 0
					for ic := 0; ic < cin; ic++ {
						base := ic*pch + z*pplane + y*pw + x
						for dz := 0; dz < 3; dz++ {
							rb := base + dz*pplane
							for dy := 0; dy < 3; dy++ {
								row := u8Ch[rb+dy*pw:][:3]
								acc += int32(wq[wi]) * int32(row[0])
								acc += int32(wq[wi+1]) * int32(row[1])
								acc += int32(wq[wi+2]) * int32(row[2])
								wi += 3
							}
						}
					}
					outPlane[y*w+x] = scale*float32(acc) + offs
				}
			}
		}
		switch t.ep {
		case epReLU:
			for i, v := range outPlane {
				if v < 0 {
					outPlane[i] = 0
				}
			}
		case epResReLU:
			resPlane := t.res[sliceBase+z*hw:][:hw]
			for i := range outPlane {
				v := outPlane[i] + resPlane[i]
				if v < 0 {
					v = 0
				}
				outPlane[i] = v
			}
		}
	}
}

func convBatchQCheck(out, in *Tensor, qw *QuantizedWeights) (batch, cin, d, h, w int) {
	if len(in.Shape) != 5 || len(out.Shape) != 5 {
		panic(fmt.Sprintf("tensor: Conv3DBatchQInto wants 5-d (B,C,D,H,W) tensors, got in %v out %v", in.Shape, out.Shape))
	}
	batch = in.Shape[0]
	cin, d, h, w = in.Shape[1], in.Shape[2], in.Shape[3], in.Shape[4]
	if qw.Cin != cin {
		panic(fmt.Sprintf("tensor: Conv3DBatchQInto weights expect %d input channels, input has %d", qw.Cin, cin))
	}
	if out.Shape[0] != batch || out.Shape[1] != qw.Cout || out.Shape[2] != d || out.Shape[3] != h || out.Shape[4] != w {
		panic(fmt.Sprintf("tensor: Conv3DBatchQInto out shape %v, want (%d,%d,%d,%d,%d)", out.Shape, batch, qw.Cout, d, h, w))
	}
	return
}

func convBatchQDispatch(out, in *Tensor, qw *QuantizedWeights, bias []float32, res []float32, ep convEpilogue, maxBatch int) {
	batch, cin, d, h, w := convBatchQCheck(out, in, qw)
	if maxBatch > 0 && maxBatch < batch {
		batch = maxBatch
	}
	qb := qBufPool.Get().(*qBuf)
	qb.ensure(spanPadLen(batch*cin, d, h, w), batch, cin*d*h*w)
	qb.quantizeSlots(in.Data, batch, cin, d, h, w)
	asm := QuantAsmActive()
	if asm {
		buildP32(qb.p32, qb.u8)
	}
	t := qconvPool.Get().(*qconvBatch)
	t.out, t.res, t.bias = out.Data, res, bias
	t.qw = qw
	t.u8, t.p32, t.sa, t.zu = qb.u8, qb.p32, qb.sa, qb.zu
	t.asm = asm
	t.ep = ep
	t.cout = qw.Cout
	t.cin, t.d, t.h, t.wd = cin, d, h, w
	unitWork := h * w * cin * 27
	grain := 1
	if unitWork < convGrainFlops {
		grain = (convGrainFlops + unitWork - 1) / unitWork
	}
	parallel.InvokeGrain(batch*qw.Cout*d, grain, t)
	t.out, t.res, t.bias, t.qw = nil, nil, nil, nil
	t.u8, t.p32, t.sa, t.zu = nil, nil, nil, nil
	qconvPool.Put(t)
	qBufPool.Put(qb)
}

// Conv3DBatchQInto is the int8 counterpart of Conv3DBatchInto: B packed
// (Cin, D, H, W) inputs against shared quantized (Cout, Cin, 3, 3, 3)
// weights. Activations quantize per slot, so each item's result is
// bit-identical at every batch size and worker count, on both the VNNI and
// scalar engines; steady-state calls allocate nothing.
func Conv3DBatchQInto(out, in *Tensor, qw *QuantizedWeights, bias []float32, batch int) {
	convBatchQDispatch(out, in, qw, bias, nil, epNone, batch)
}

// Conv3DBatchQReLUInto fuses ReLU into the quantized conv's requantization.
func Conv3DBatchQReLUInto(out, in *Tensor, qw *QuantizedWeights, bias []float32, batch int) {
	convBatchQDispatch(out, in, qw, bias, nil, epReLU, batch)
}

// Conv3DBatchQResReLUInto fuses residual-add+ReLU into the quantized conv's
// requantization: out = max(0, requant(acc) + res).
func Conv3DBatchQResReLUInto(out, in *Tensor, qw *QuantizedWeights, bias []float32, res *Tensor, batch int) {
	if !SameShape(out, res) {
		panic("tensor: Conv3DBatchQResReLUInto residual shape mismatch")
	}
	convBatchQDispatch(out, in, qw, bias, res.Data, epResReLU, batch)
}
