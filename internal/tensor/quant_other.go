//go:build !amd64

package tensor

// Stub so the quantized dispatch compiles on non-amd64; QuantAsmActive is
// always false there, so this is unreachable.
func qconv33Span4(out *float32, p32, wp *uint32, cin, pch, pplane, pw, ow, nrows int64, mask *int32, scale, offs float32) {
	panic("tensor: qconv33Span4 called without VNNI support")
}

// Quantization helper stubs: hasAVX2 is false on non-amd64 builds, so the
// pure-Go paths in quantCodes / minMaxSpan / buildP32 always run instead.
func minMaxF32(src *float32, n int64) (lo, hi float32) {
	panic("tensor: minMaxF32 called without AVX2 support")
}

func quantU8(dst *uint8, src *float32, n int64, inv, zf float32) {
	panic("tensor: quantU8 called without AVX2 support")
}

func pack24(dst *uint32, src *uint8, iters int64) {
	panic("tensor: pack24 called without AVX2 support")
}
