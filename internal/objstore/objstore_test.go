package objstore

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"chaseci/internal/sim"
)

func newTestStore(osds int, cfg Config) (*sim.Clock, *Store) {
	c := sim.NewClock()
	s := NewStore(c, nil, cfg)
	for i := 0; i < osds; i++ {
		s.AddOSD(fmt.Sprintf("osd-%02d", i), fmt.Sprintf("site-%d", i%4), 1e12, 1)
	}
	return c, s
}

func TestPutGetRoundTrip(t *testing.T) {
	_, s := newTestStore(6, Config{Replicas: 3})
	data := []byte("ivt volume bytes")
	if _, err := s.Put("connect", "train/vol0", 0, data); err != nil {
		t.Fatal(err)
	}
	obj, err := s.Get("connect", "train/vol0")
	if err != nil {
		t.Fatal(err)
	}
	if string(obj.Data) != string(data) {
		t.Fatalf("data = %q, want %q", obj.Data, data)
	}
	if obj.Size != float64(len(data)) {
		t.Fatalf("size = %v, want %d", obj.Size, len(data))
	}
}

func TestGetMissing(t *testing.T) {
	_, s := newTestStore(3, Config{})
	if _, err := s.Get("b", "nope"); err != ErrNotFound {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestReplicasAreDistinctOSDs(t *testing.T) {
	_, s := newTestStore(8, Config{Replicas: 3})
	locs, err := s.Put("b", "k", 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(locs) != 3 {
		t.Fatalf("got %d replicas, want 3", len(locs))
	}
	seen := map[string]bool{}
	for _, id := range locs {
		if seen[id] {
			t.Fatalf("replica set has duplicate OSD %s", id)
		}
		seen[id] = true
	}
}

func TestUsageAccountsReplication(t *testing.T) {
	_, s := newTestStore(6, Config{Replicas: 3})
	s.Put("b", "k", 1000, nil)
	if got := s.TotalUsed(); got != 3000 {
		t.Fatalf("TotalUsed = %v, want 3000 (3x replication)", got)
	}
	h := s.HealthReport()
	if h.BytesStored != 1000 || h.BytesRaw != 3000 {
		t.Fatalf("health bytes = %v/%v, want 1000/3000", h.BytesStored, h.BytesRaw)
	}
}

func TestOverwriteReplaces(t *testing.T) {
	_, s := newTestStore(6, Config{Replicas: 2})
	s.Put("b", "k", 1000, nil)
	s.Put("b", "k", 500, nil)
	if got := s.TotalUsed(); got != 1000 {
		t.Fatalf("TotalUsed after overwrite = %v, want 1000", got)
	}
	if sz, ok := s.Stat("b", "k"); !ok || sz != 500 {
		t.Fatalf("Stat = %v,%v want 500,true", sz, ok)
	}
}

func TestDelete(t *testing.T) {
	_, s := newTestStore(4, Config{Replicas: 2})
	s.Put("b", "k", 100, nil)
	if err := s.Delete("b", "k"); err != nil {
		t.Fatal(err)
	}
	if s.TotalUsed() != 0 {
		t.Fatalf("TotalUsed after delete = %v, want 0", s.TotalUsed())
	}
	if err := s.Delete("b", "k"); err != ErrNotFound {
		t.Fatalf("double delete err = %v, want ErrNotFound", err)
	}
}

func TestListSorted(t *testing.T) {
	_, s := newTestStore(3, Config{})
	for _, k := range []string{"c", "a", "b"} {
		s.Put("bkt", k, 1, nil)
	}
	got := s.List("bkt")
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("List = %v", got)
	}
}

func TestPlacementDeterministic(t *testing.T) {
	_, s1 := newTestStore(10, Config{Replicas: 3, PGs: 64})
	_, s2 := newTestStore(10, Config{Replicas: 3, PGs: 64})
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("file-%d", i)
		s1.Put("b", k, 1, nil)
		s2.Put("b", k, 1, nil)
		l1, l2 := s1.Locations("b", k), s2.Locations("b", k)
		for j := range l1 {
			if l1[j] != l2[j] {
				t.Fatalf("placement of %s differs: %v vs %v", k, l1, l2)
			}
		}
	}
}

func TestPlacementBalance(t *testing.T) {
	// Ceph sizing guidance is ~100 PGs per OSD; with too few PGs the
	// placement is lumpy, exactly as on a real cluster.
	_, s := newTestStore(10, Config{Replicas: 3, PGs: 1024})
	const n = 5000
	for i := 0; i < n; i++ {
		s.Put("b", fmt.Sprintf("f-%05d", i), 1, nil)
	}
	mean := s.TotalUsed() / 10
	for _, o := range s.OSDs() {
		if o.Used() < mean*0.5 || o.Used() > mean*1.5 {
			t.Fatalf("OSD %s holds %v bytes, mean %v: badly unbalanced", o.ID, o.Used(), mean)
		}
	}
}

func TestWeightedPlacement(t *testing.T) {
	c := sim.NewClock()
	s := NewStore(c, nil, Config{Replicas: 1, PGs: 512})
	s.AddOSD("small", "a", 1e12, 1)
	s.AddOSD("big", "a", 1e12, 3)
	for i := 0; i < 3000; i++ {
		s.Put("b", fmt.Sprintf("f-%d", i), 1, nil)
	}
	small, big := s.OSD("small").Used(), s.OSD("big").Used()
	ratio := big / small
	if ratio < 2 || ratio > 4.5 {
		t.Fatalf("weight-3 OSD holds %vx the data of weight-1, want ~3x", ratio)
	}
}

func TestFailOSDKeepsDataReadable(t *testing.T) {
	c, s := newTestStore(8, Config{Replicas: 3})
	for i := 0; i < 100; i++ {
		s.Put("b", fmt.Sprintf("f-%d", i), 100, nil)
	}
	if _, err := s.FailOSD("osd-00"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := s.Get("b", fmt.Sprintf("f-%d", i)); err != nil {
			t.Fatalf("read after single OSD failure: %v", err)
		}
	}
	c.Run()
	if s.Recovering() {
		t.Fatal("still recovering after clock drained")
	}
}

func TestFailOSDRestoresReplicaCount(t *testing.T) {
	c, s := newTestStore(8, Config{Replicas: 3})
	for i := 0; i < 100; i++ {
		s.Put("b", fmt.Sprintf("f-%d", i), 100, nil)
	}
	recov, _ := s.FailOSD("osd-03")
	if recov <= 0 {
		t.Fatal("expected bytes to recover after failing a populated OSD")
	}
	c.Run()
	for i := 0; i < 100; i++ {
		locs := s.Locations("b", fmt.Sprintf("f-%d", i))
		if len(locs) != 3 {
			t.Fatalf("object has %d replicas after recovery, want 3", len(locs))
		}
		for _, id := range locs {
			if id == "osd-03" {
				t.Fatal("replica still mapped to failed OSD")
			}
			if !s.OSD(id).Up {
				t.Fatal("replica mapped to down OSD")
			}
		}
	}
	if !s.HealthReport().OK() {
		t.Fatalf("health not OK after recovery: %+v", s.HealthReport())
	}
}

func TestFailBelowReplicationUndersized(t *testing.T) {
	_, s := newTestStore(3, Config{Replicas: 3, PGs: 16})
	s.Put("b", "k", 100, nil)
	s.FailOSD("osd-00")
	h := s.HealthReport()
	if h.PGsUndersized+h.PGsDegraded != h.PGsTotal {
		t.Fatalf("with 2 up OSDs and 3 replicas all PGs should be short: %+v", h)
	}
}

func TestRecoverOSDRejoins(t *testing.T) {
	_, s := newTestStore(3, Config{Replicas: 3, PGs: 16})
	s.Put("b", "k", 100, nil)
	s.FailOSD("osd-01")
	if err := s.RecoverOSD("osd-01"); err != nil {
		t.Fatal(err)
	}
	if h := s.HealthReport(); h.PGsActive != h.PGsTotal {
		t.Fatalf("after rejoin health = %+v, want all active", h)
	}
}

func TestFailUnknownOSD(t *testing.T) {
	_, s := newTestStore(2, Config{})
	if _, err := s.FailOSD("nope"); err != ErrOSDUnknown {
		t.Fatalf("err = %v, want ErrOSDUnknown", err)
	}
}

func TestPlacementStabilityUnderFailure(t *testing.T) {
	// Straw2 property: failing one OSD must not shuffle replicas among
	// surviving OSDs — each PG keeps its surviving members.
	_, s := newTestStore(10, Config{Replicas: 3, PGs: 128})
	before := make(map[int][]string)
	for pg, locs := range s.pgMap {
		before[pg] = append([]string(nil), locs...)
	}
	s.FailOSD("osd-05")
	for pg, after := range s.pgMap {
		kept := map[string]bool{}
		for _, id := range after {
			kept[id] = true
		}
		for _, id := range before[pg] {
			if id == "osd-05" {
				continue
			}
			if !kept[id] {
				t.Fatalf("pg %d lost surviving replica %s after unrelated failure", pg, id)
			}
		}
	}
}

func TestPrimarySite(t *testing.T) {
	_, s := newTestStore(6, Config{Replicas: 3})
	s.Put("b", "k", 1, nil)
	site, ok := s.PrimarySite("b", "k")
	if !ok || site == "" {
		t.Fatalf("PrimarySite = %q,%v", site, ok)
	}
	if _, ok := s.PrimarySite("b", "missing"); ok {
		t.Fatal("PrimarySite of missing object reported ok")
	}
}

func TestPutWithNoOSDs(t *testing.T) {
	c := sim.NewClock()
	s := NewStore(c, nil, Config{})
	if _, err := s.Put("b", "k", 1, nil); err != ErrNoOSDs {
		t.Fatalf("err = %v, want ErrNoOSDs", err)
	}
}

func TestMountReadWrite(t *testing.T) {
	_, s := newTestStore(4, Config{Replicas: 2})
	m := s.MountBucket("connect")
	if err := m.WriteFile("results/seg0.bin", []byte("mask")); err != nil {
		t.Fatal(err)
	}
	data, err := m.ReadFile("/results/seg0.bin")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "mask" {
		t.Fatalf("data = %q", data)
	}
}

func TestMountReadDir(t *testing.T) {
	_, s := newTestStore(4, Config{Replicas: 2})
	m := s.MountBucket("b")
	m.WriteSized("data/raw/f1.nc", 10)
	m.WriteSized("data/raw/f2.nc", 10)
	m.WriteSized("data/merged/h1.h5", 10)
	m.WriteSized("top.txt", 1)

	root := m.ReadDir("")
	if len(root) != 2 || root[0] != "data/" || root[1] != "top.txt" {
		t.Fatalf("root = %v", root)
	}
	sub := m.ReadDir("data/raw")
	if len(sub) != 2 || sub[0] != "f1.nc" || sub[1] != "f2.nc" {
		t.Fatalf("data/raw = %v", sub)
	}
}

func TestMountDirSizeAndGlob(t *testing.T) {
	_, s := newTestStore(4, Config{Replicas: 2})
	m := s.MountBucket("b")
	m.WriteSized("x/a", 5)
	m.WriteSized("x/b", 7)
	m.WriteSized("y/c", 100)
	if got := m.DirSize("x/"); got != 12 {
		t.Fatalf("DirSize(x/) = %v, want 12", got)
	}
	if got := m.Glob("x/"); len(got) != 2 {
		t.Fatalf("Glob(x/) = %v", got)
	}
}

func TestPropertyReplicaCountInvariant(t *testing.T) {
	// For any OSD count >= replicas and any key set, every object gets
	// exactly `replicas` distinct up replicas.
	f := func(seed uint64, osdRaw, keysRaw uint8) bool {
		osds := int(osdRaw%12) + 3
		keys := int(keysRaw%50) + 1
		c := sim.NewClock()
		s := NewStore(c, nil, Config{Replicas: 3, PGs: 64})
		for i := 0; i < osds; i++ {
			s.AddOSD(fmt.Sprintf("o%d", i), "s", 1e12, 1)
		}
		rng := sim.NewRNG(seed)
		for i := 0; i < keys; i++ {
			k := fmt.Sprintf("k%d", rng.Intn(1000))
			s.Put("b", k, 1, nil)
			locs := s.Locations("b", k)
			if len(locs) != 3 {
				return false
			}
			seen := map[string]bool{}
			for _, id := range locs {
				if seen[id] {
					return false
				}
				seen[id] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyUsageConservation(t *testing.T) {
	// TotalUsed always equals sum(object size x replica count).
	f := func(sizes []uint16) bool {
		c := sim.NewClock()
		s := NewStore(c, nil, Config{Replicas: 2, PGs: 32})
		for i := 0; i < 5; i++ {
			s.AddOSD(fmt.Sprintf("o%d", i), "s", 1e12, 1)
		}
		want := 0.0
		for i, sz := range sizes {
			s.Put("b", fmt.Sprintf("k%d", i), float64(sz), nil)
			want += float64(sz) * 2
		}
		return math.Abs(s.TotalUsed()-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReplicaPlacement(t *testing.T) {
	clk, s := newTestStore(6, Config{Replicas: 3})
	if got := s.ReplicaPlacement("b", "missing"); got != nil {
		t.Fatalf("placement of missing object = %v, want nil", got)
	}
	if _, err := s.Put("b", "vol", 1e6, nil); err != nil {
		t.Fatal(err)
	}
	reps := s.ReplicaPlacement("b", "vol")
	if len(reps) != 3 {
		t.Fatalf("replicas = %d, want 3", len(reps))
	}
	locs := s.Locations("b", "vol")
	for i, r := range reps {
		if r.OSD != locs[i] {
			t.Fatalf("replica %d OSD = %s, want %s", i, r.OSD, locs[i])
		}
		if !r.Up {
			t.Fatalf("replica %d on %s reported down on a healthy store", i, r.OSD)
		}
		if want := s.OSD(r.OSD).Site; r.Site != want {
			t.Fatalf("replica %d site = %s, want %s", i, r.Site, want)
		}
	}
	// Failing an OSD remaps immediately: the placement must only name
	// surviving daemons afterwards (the requeue path depends on this).
	if _, err := s.FailOSD(reps[0].OSD); err != nil {
		t.Fatal(err)
	}
	for _, r := range s.ReplicaPlacement("b", "vol") {
		if r.OSD == reps[0].OSD {
			t.Fatalf("placement still names failed OSD %s", r.OSD)
		}
		if !r.Up {
			t.Fatalf("remapped placement names down OSD %s", r.OSD)
		}
	}
	clk.Run()
}
