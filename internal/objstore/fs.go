package objstore

import (
	"sort"
	"strings"
)

// Mount is the CephFS facade: a POSIX-ish path view over one bucket, shared
// by every pod in a namespace ("the attached CephFS directory that all nodes
// in the namespace can see"). Paths use forward slashes; directories are
// implicit, as in object stores.
type Mount struct {
	store  *Store
	bucket string
}

// MountBucket returns a filesystem view of the bucket.
func (s *Store) MountBucket(bucket string) *Mount {
	return &Mount{store: s, bucket: bucket}
}

// Bucket returns the bucket name backing the mount.
func (m *Mount) Bucket() string { return m.bucket }

func cleanPath(p string) string { return strings.TrimPrefix(p, "/") }

// WriteFile stores real bytes at path.
func (m *Mount) WriteFile(path string, data []byte) error {
	_, err := m.store.Put(m.bucket, cleanPath(path), float64(len(data)), data)
	return err
}

// WriteSized records a size-only (simulated bulk) file at path.
func (m *Mount) WriteSized(path string, size float64) error {
	_, err := m.store.Put(m.bucket, cleanPath(path), size, nil)
	return err
}

// ReadFile returns the bytes at path, or ErrNotFound. Size-only files return
// a nil slice with no error.
func (m *Mount) ReadFile(path string) ([]byte, error) {
	obj, err := m.store.Get(m.bucket, cleanPath(path))
	if err != nil {
		return nil, err
	}
	return obj.Data, nil
}

// Stat returns the file's size and whether it exists.
func (m *Mount) Stat(path string) (float64, bool) {
	return m.store.Stat(m.bucket, cleanPath(path))
}

// ReplicaPlacement resolves the replica set currently holding the file at
// path (see Store.ReplicaPlacement).
func (m *Mount) ReplicaPlacement(path string) []Replica {
	return m.store.ReplicaPlacement(m.bucket, cleanPath(path))
}

// FailOSD and RecoverOSD forward the storage fault model to the mount's
// store, so a component holding only the mount (the dataset manager) can
// drive OSD loss without a second reference to the store.
func (m *Mount) FailOSD(id string) (float64, error) { return m.store.FailOSD(id) }

// RecoverOSD forwards to Store.RecoverOSD.
func (m *Mount) RecoverOSD(id string) error { return m.store.RecoverOSD(id) }

// Remove deletes the file at path.
func (m *Mount) Remove(path string) error {
	return m.store.Delete(m.bucket, cleanPath(path))
}

// ReadDir lists the immediate children of dir. Child directories are
// returned with a trailing slash, once each, in sorted order.
func (m *Mount) ReadDir(dir string) []string {
	prefix := cleanPath(dir)
	if prefix != "" && !strings.HasSuffix(prefix, "/") {
		prefix += "/"
	}
	seen := make(map[string]bool)
	var out []string
	for _, key := range m.store.List(m.bucket) {
		if !strings.HasPrefix(key, prefix) {
			continue
		}
		rest := key[len(prefix):]
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			d := rest[:i+1]
			if !seen[d] {
				seen[d] = true
				out = append(out, d)
			}
		} else if rest != "" {
			out = append(out, rest)
		}
	}
	sort.Strings(out)
	return out
}

// Glob returns all keys under prefix (recursive), sorted.
func (m *Mount) Glob(prefix string) []string {
	p := cleanPath(prefix)
	var out []string
	for _, key := range m.store.List(m.bucket) {
		if strings.HasPrefix(key, p) {
			out = append(out, key)
		}
	}
	return out
}

// DirSize sums the sizes of all files under prefix.
func (m *Mount) DirSize(prefix string) float64 {
	p := cleanPath(prefix)
	sum := 0.0
	for _, key := range m.store.List(m.bucket) {
		if strings.HasPrefix(key, p) {
			if sz, ok := m.store.Stat(m.bucket, key); ok {
				sum += sz
			}
		}
	}
	return sum
}
