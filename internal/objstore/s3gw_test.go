package objstore

import (
	"bytes"
	"encoding/xml"
	"io"
	"net/http"
	"strings"
	"testing"
)

func newGateway(t *testing.T) (*Store, *Gateway) {
	t.Helper()
	_, s := newTestStore(6, Config{Replicas: 3})
	g, err := ServeGateway(s, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	return s, g
}

func doReq(t *testing.T, method, url string, body []byte) *http.Response {
	t.Helper()
	var rdr io.Reader
	if body != nil {
		rdr = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rdr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestS3PutGetRoundTrip(t *testing.T) {
	_, g := newGateway(t)
	url := g.BaseURL() + "/models/ffn/model.bin"
	payload := []byte("serialized weights")

	resp := doReq(t, http.MethodPut, url, payload)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT status = %s", resp.Status)
	}

	resp = doReq(t, http.MethodGet, url, nil)
	defer resp.Body.Close()
	got, _ := io.ReadAll(resp.Body)
	if !bytes.Equal(got, payload) {
		t.Fatalf("GET body = %q", got)
	}
}

func TestS3PutStoresInCluster(t *testing.T) {
	s, g := newGateway(t)
	resp := doReq(t, http.MethodPut, g.BaseURL()+"/b/key", []byte("abc"))
	resp.Body.Close()
	obj, err := s.Get("b", "key")
	if err != nil || string(obj.Data) != "abc" {
		t.Fatalf("store content = %v, %v", obj, err)
	}
	if locs := s.Locations("b", "key"); len(locs) != 3 {
		t.Fatalf("replicas = %d, want 3", len(locs))
	}
}

func TestS3GetMissing(t *testing.T) {
	_, g := newGateway(t)
	resp := doReq(t, http.MethodGet, g.BaseURL()+"/b/missing", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %s, want 404", resp.Status)
	}
}

func TestS3Head(t *testing.T) {
	s, g := newGateway(t)
	s.Put("b", "sized", 12345, nil) // size-only simulated object
	resp := doReq(t, http.MethodHead, g.BaseURL()+"/b/sized", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HEAD status = %s", resp.Status)
	}
	if cl := resp.Header.Get("Content-Length"); cl != "12345" {
		t.Fatalf("Content-Length = %s, want 12345", cl)
	}
	resp = doReq(t, http.MethodHead, g.BaseURL()+"/b/none", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("HEAD missing status = %s", resp.Status)
	}
}

func TestS3GetSizeOnlyObject(t *testing.T) {
	s, g := newGateway(t)
	s.Put("b", "bulk", 1e9, nil)
	resp := doReq(t, http.MethodGet, g.BaseURL()+"/b/bulk", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("status = %s, want 204 for size-only object", resp.Status)
	}
}

func TestS3Delete(t *testing.T) {
	s, g := newGateway(t)
	s.Put("b", "k", 0, []byte("x"))
	resp := doReq(t, http.MethodDelete, g.BaseURL()+"/b/k", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE status = %s", resp.Status)
	}
	if _, err := s.Get("b", "k"); err != ErrNotFound {
		t.Fatalf("object survives DELETE: %v", err)
	}
	resp = doReq(t, http.MethodDelete, g.BaseURL()+"/b/k", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double DELETE status = %s", resp.Status)
	}
}

func TestS3ListBucket(t *testing.T) {
	s, g := newGateway(t)
	s.Put("data", "raw/a.nc", 10, nil)
	s.Put("data", "raw/b.nc", 20, nil)
	s.Put("data", "merged/c.h5", 30, nil)

	resp := doReq(t, http.MethodGet, g.BaseURL()+"/data", nil)
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/xml" {
		t.Fatalf("Content-Type = %s", ct)
	}
	var out listBucketResult
	if err := xml.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Name != "data" || len(out.Contents) != 3 {
		t.Fatalf("list = %+v", out)
	}
	if out.Contents[0].Key != "merged/c.h5" || out.Contents[0].Size != 30 {
		t.Fatalf("first entry = %+v", out.Contents[0])
	}
}

func TestS3ListPrefix(t *testing.T) {
	s, g := newGateway(t)
	s.Put("data", "raw/a.nc", 10, nil)
	s.Put("data", "merged/c.h5", 30, nil)
	resp := doReq(t, http.MethodGet, g.BaseURL()+"/data?prefix=raw/", nil)
	defer resp.Body.Close()
	var out listBucketResult
	xml.NewDecoder(resp.Body).Decode(&out)
	if len(out.Contents) != 1 || out.Contents[0].Key != "raw/a.nc" {
		t.Fatalf("prefixed list = %+v", out.Contents)
	}
}

func TestS3BadRequests(t *testing.T) {
	_, g := newGateway(t)
	resp := doReq(t, http.MethodPut, g.BaseURL()+"/bucketonly", []byte("x"))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("PUT without key status = %s", resp.Status)
	}
	resp = doReq(t, "PATCH", g.BaseURL()+"/b/k", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("PATCH status = %s", resp.Status)
	}
}

func TestS3LargeObject(t *testing.T) {
	_, g := newGateway(t)
	payload := bytes.Repeat([]byte("granule"), 100000) // 700 KB
	url := g.BaseURL() + "/big/object"
	resp := doReq(t, http.MethodPut, url, payload)
	resp.Body.Close()
	resp = doReq(t, http.MethodGet, url, nil)
	defer resp.Body.Close()
	got, _ := io.ReadAll(resp.Body)
	if !bytes.Equal(got, payload) {
		t.Fatalf("large object corrupted: %d vs %d bytes", len(got), len(payload))
	}
}

func TestS3KeysWithSlashes(t *testing.T) {
	_, g := newGateway(t)
	url := g.BaseURL() + "/b/" + strings.Join([]string{"a", "b", "c", "d.nc"}, "/")
	resp := doReq(t, http.MethodPut, url, []byte("deep"))
	resp.Body.Close()
	resp = doReq(t, http.MethodGet, url, nil)
	defer resp.Body.Close()
	got, _ := io.ReadAll(resp.Body)
	if string(got) != "deep" {
		t.Fatalf("nested key = %q", got)
	}
}
