package objstore

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"
)

// Mount edge cases: path cleaning, overwrite semantics, implicit-directory
// listing, and read-after-OSD-loss heal — the behaviors the dataset plane
// leans on.

func TestMountLeadingSlashCleaned(t *testing.T) {
	_, s := newTestStore(4, Config{Replicas: 2})
	m := s.MountBucket("data")
	if err := m.WriteFile("/a/b.bin", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// The slashed and unslashed spellings are the same file.
	got, err := m.ReadFile("a/b.bin")
	if err != nil {
		t.Fatalf("unslashed read of slashed write: %v", err)
	}
	if !bytes.Equal(got, []byte("x")) {
		t.Fatalf("read %q", got)
	}
	if err := m.WriteFile("a/b.bin", []byte("y")); err != nil {
		t.Fatal(err)
	}
	if got, _ = m.ReadFile("/a/b.bin"); !bytes.Equal(got, []byte("y")) {
		t.Fatalf("slashed read after unslashed overwrite: %q", got)
	}
	if sz, ok := m.Stat("/a/b.bin"); !ok || sz != 1 {
		t.Fatalf("Stat = %v, %v", sz, ok)
	}
	if err := m.Remove("/a/b.bin"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ReadFile("a/b.bin"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("read after slashed remove: %v", err)
	}
}

func TestMountOverwriteReplacesContentAndAccounting(t *testing.T) {
	_, s := newTestStore(4, Config{Replicas: 2})
	m := s.MountBucket("data")
	if err := m.WriteFile("v", bytes.Repeat([]byte("a"), 1000)); err != nil {
		t.Fatal(err)
	}
	before := s.TotalUsed()
	// Overwrite with smaller content: bytes replaced, usage shrinks, no
	// duplicate key appears in listings.
	if err := m.WriteFile("v", []byte("tiny")); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadFile("v")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "tiny" {
		t.Fatalf("read %q after overwrite", got)
	}
	if after := s.TotalUsed(); after >= before {
		t.Fatalf("usage %v not reduced from %v by shrinking overwrite", after, before)
	}
	if ls := m.ReadDir(""); len(ls) != 1 || ls[0] != "v" {
		t.Fatalf("ReadDir after overwrite = %v", ls)
	}
	// Overwriting a real file with a size-only record drops the bytes.
	if err := m.WriteSized("v", 5e6); err != nil {
		t.Fatal(err)
	}
	if got, err = m.ReadFile("v"); err != nil || got != nil {
		t.Fatalf("size-only overwrite: data=%v err=%v", got, err)
	}
	if sz, ok := m.Stat("v"); !ok || sz != 5e6 {
		t.Fatalf("Stat after size-only overwrite = %v, %v", sz, ok)
	}
}

func TestMountImplicitDirectoryListing(t *testing.T) {
	_, s := newTestStore(4, Config{Replicas: 2})
	m := s.MountBucket("data")
	for _, p := range []string{"top.bin", "a/x.bin", "a/y.bin", "a/deep/z.bin", "b/w.bin"} {
		if err := m.WriteFile(p, []byte(p)); err != nil {
			t.Fatal(err)
		}
	}
	// Root: files first-level only, child dirs once each with a trailing
	// slash, sorted.
	if got, want := m.ReadDir(""), []string{"a/", "b/", "top.bin"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("ReadDir(\"\") = %v, want %v", got, want)
	}
	// Subdir with and without trailing slash, and with a leading slash.
	want := []string{"deep/", "x.bin", "y.bin"}
	for _, dir := range []string{"a", "a/", "/a"} {
		if got := m.ReadDir(dir); !reflect.DeepEqual(got, want) {
			t.Fatalf("ReadDir(%q) = %v, want %v", dir, got, want)
		}
	}
	// A directory exists only through its files: empty prefix after removal.
	if err := m.Remove("b/w.bin"); err != nil {
		t.Fatal(err)
	}
	if got := m.ReadDir("b"); len(got) != 0 {
		t.Fatalf("ReadDir(b) after removing its only file = %v", got)
	}
	if got, want := m.ReadDir(""), []string{"a/", "top.bin"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("ReadDir(\"\") after removal = %v, want %v", got, want)
	}
	// Listing a non-directory name yields nothing (no such prefix).
	if got := m.ReadDir("top.bin"); len(got) != 0 {
		t.Fatalf("ReadDir(top.bin) = %v", got)
	}
}

func TestMountReadAfterOSDLossHeals(t *testing.T) {
	c, s := newTestStore(6, Config{Replicas: 3})
	m := s.MountBucket("data")
	payloads := make(map[string][]byte)
	for i := 0; i < 40; i++ {
		p := fmt.Sprintf("ds/%02d.bin", i)
		payloads[p] = bytes.Repeat([]byte{byte(i)}, 64)
		if err := m.WriteFile(p, payloads[p]); err != nil {
			t.Fatal(err)
		}
	}
	// Lose an OSD: every file stays readable through surviving replicas,
	// bytes intact.
	if _, err := s.FailOSD("osd-01"); err != nil {
		t.Fatal(err)
	}
	for p, want := range payloads {
		got, err := m.ReadFile(p)
		if err != nil {
			t.Fatalf("%s after OSD loss: %v", p, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s corrupted after OSD loss", p)
		}
	}
	if !s.Recovering() {
		t.Fatal("store not re-replicating after losing a populated OSD")
	}
	// Drain virtual time: the heal completes and every file is back to
	// full replication on up OSDs.
	c.Run()
	if s.Recovering() {
		t.Fatal("still recovering after clock drained")
	}
	if h := s.HealthReport(); !h.OK() {
		t.Fatalf("health not OK after heal: %+v", h)
	}
	for p, want := range payloads {
		got, err := m.ReadFile(p)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("%s after heal: %v", p, err)
		}
		locs := s.Locations("data", p)
		if len(locs) != 3 {
			t.Fatalf("%s has %d replicas after heal, want 3", p, len(locs))
		}
		for _, id := range locs {
			if id == "osd-01" || !s.OSD(id).Up {
				t.Fatalf("%s replica on down OSD %s after heal", p, id)
			}
		}
	}
}
