// Package objstore is the simulated Rook/Ceph layer of CHASE-CI: a
// replicated object store spread across OSDs (storage daemons) hosted on
// cluster nodes at PRP sites. Placement uses placement groups mapped to OSDs
// with a straw2-style weighted rendezvous hash, giving the two properties the
// paper relies on: data is dynamically distributed between storage nodes, and
// the loss of an OSD degrades only the placement groups it held, which the
// store heals by re-replicating in virtual time ("Ceph ... replicates and
// dynamically distributes data between storage nodes while monitoring their
// health").
package objstore

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"chaseci/internal/metrics"
	"chaseci/internal/sim"
)

// Errors returned by store operations.
var (
	ErrNotFound     = errors.New("objstore: object not found")
	ErrNoOSDs       = errors.New("objstore: not enough OSDs up for requested replication")
	ErrOSDUnknown   = errors.New("objstore: unknown OSD")
	ErrBucketExists = errors.New("objstore: bucket already exists")
	// ErrAllReplicasDown is a *transient* read failure: the object exists
	// but every replica sits on a down OSD. Unlike ErrNotFound, a retry
	// after OSD recovery can succeed, so callers may back off and retry.
	ErrAllReplicasDown = errors.New("objstore: all replicas down")
)

// OSD is one object storage daemon (a disk on a FIONA node).
type OSD struct {
	ID       string
	Site     string  // netsim site hosting the daemon
	Capacity float64 // bytes
	Weight   float64 // CRUSH weight; proportional share of data
	Up       bool

	used float64
}

// Used returns bytes currently stored on the OSD (including replicas).
func (o *OSD) Used() float64 { return o.used }

// Object is stored content. Size is authoritative for capacity accounting;
// Data optionally carries real bytes for the small volumes the real-compute
// paths (FFN, CONNECT) operate on.
type Object struct {
	Bucket string
	Key    string
	Size   float64
	Data   []byte

	pg int
}

// Health summarizes placement-group state, mirroring `ceph status`.
type Health struct {
	PGsTotal      int
	PGsActive     int // full replica count on up OSDs
	PGsDegraded   int // at least one replica on a down OSD
	PGsUndersized int // fewer mapped OSDs than the replication factor
	BytesStored   float64
	BytesRaw      float64 // stored x replication
}

// OK reports whether every PG has its full complement of replicas.
func (h Health) OK() bool { return h.PGsDegraded == 0 && h.PGsUndersized == 0 }

// Config holds store-wide parameters.
type Config struct {
	Replicas     int     // replica count per object (Ceph default 3)
	PGs          int     // number of placement groups
	RecoveryRate float64 // bytes/sec per OSD devoted to re-replication
}

func (c *Config) defaults() {
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if c.PGs <= 0 {
		c.PGs = 128
	}
	if c.RecoveryRate <= 0 {
		c.RecoveryRate = 100e6 // 100 MB/s, SSD-class recovery
	}
}

// Store is the cluster-wide object store.
type Store struct {
	clock *sim.Clock
	cfg   Config

	osds    map[string]*OSD
	osdIDs  []string // deterministic iteration
	objects map[string]*Object
	buckets map[string]map[string]*Object

	pgMap [][]string // pg -> replica OSD IDs

	recovering  bool
	healthGauge *metrics.Gauge
	storedGauge *metrics.Gauge
}

// NewStore creates an empty store on the given clock. reg may be nil.
func NewStore(clock *sim.Clock, reg *metrics.Registry, cfg Config) *Store {
	cfg.defaults()
	s := &Store{
		clock:   clock,
		cfg:     cfg,
		osds:    make(map[string]*OSD),
		objects: make(map[string]*Object),
		buckets: make(map[string]map[string]*Object),
		pgMap:   make([][]string, cfg.PGs),
	}
	if reg != nil {
		s.healthGauge = reg.Gauge("ceph_pgs_degraded", nil)
		s.storedGauge = reg.Gauge("ceph_bytes_stored", nil)
	}
	return s
}

// Replicas returns the configured replication factor.
func (s *Store) Replicas() int { return s.cfg.Replicas }

// AddOSD registers a storage daemon and rebalances placement groups.
func (s *Store) AddOSD(id, site string, capacity, weight float64) *OSD {
	if _, dup := s.osds[id]; dup {
		panic("objstore: duplicate OSD " + id)
	}
	if weight <= 0 {
		weight = 1
	}
	o := &OSD{ID: id, Site: site, Capacity: capacity, Weight: weight, Up: true}
	s.osds[id] = o
	s.osdIDs = append(s.osdIDs, id)
	sort.Strings(s.osdIDs)
	s.remap()
	return o
}

// OSDs returns the daemons in ID order.
func (s *Store) OSDs() []*OSD {
	out := make([]*OSD, 0, len(s.osdIDs))
	for _, id := range s.osdIDs {
		out = append(out, s.osds[id])
	}
	return out
}

// OSD returns the daemon with the given ID, or nil.
func (s *Store) OSD(id string) *OSD { return s.osds[id] }

// straw2 returns the weighted rendezvous score of (input, osd): each OSD
// draws an exponential "straw" scaled by its weight; the highest straws win.
// The key property is stability: changing the OSD set only remaps items whose
// winning straw belonged to a removed OSD.
func straw2(input string, osdID string, weight float64) float64 {
	h := fnv64(input + "|" + osdID)
	// Map hash to (0,1], then to an exponential variate scaled by weight.
	u := (float64(h>>11) + 1) / (1 << 53)
	return math.Log(u) / weight // negative; closer to 0 is better
}

func fnv64(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	// FNV-1a alone avalanches the final bytes poorly into the high bits,
	// which skews straw2 draws for IDs differing only in a trailing digit;
	// finish with a SplitMix64-style mixer.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// placePG computes the replica set for a placement group over up OSDs.
func (s *Store) placePG(pg int) []string {
	type cand struct {
		id    string
		score float64
	}
	var cands []cand
	for _, id := range s.osdIDs {
		o := s.osds[id]
		if !o.Up {
			continue
		}
		cands = append(cands, cand{id, straw2(fmt.Sprintf("pg-%d", pg), id, o.Weight)})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].id < cands[j].id
	})
	n := s.cfg.Replicas
	if n > len(cands) {
		n = len(cands)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = cands[i].id
	}
	return out
}

// remap recomputes every PG's replica set and adjusts per-OSD usage.
func (s *Store) remap() {
	old := s.pgMap
	s.pgMap = make([][]string, s.cfg.PGs)
	for pg := range s.pgMap {
		s.pgMap[pg] = s.placePG(pg)
	}
	// Recompute usage from scratch: deterministic and simple.
	for _, o := range s.osds {
		o.used = 0
	}
	for _, obj := range s.objects {
		for _, id := range s.pgMap[obj.pg] {
			s.osds[id].used += obj.Size
		}
	}
	_ = old
	s.publishHealth()
}

func (s *Store) pgOf(bucket, key string) int {
	return int(fnv64(bucket+"/"+key) % uint64(s.cfg.PGs))
}

func objKey(bucket, key string) string { return bucket + "/" + key }

// Put stores an object. data may be nil for size-only (simulated bulk)
// objects. Overwriting an existing key replaces it. Returns the stored
// object's replica locations.
func (s *Store) Put(bucket, key string, size float64, data []byte) ([]string, error) {
	if size < 0 {
		return nil, fmt.Errorf("objstore: negative size for %s/%s", bucket, key)
	}
	if data != nil && size == 0 {
		size = float64(len(data))
	}
	pg := s.pgOf(bucket, key)
	replicas := s.pgMap[pg]
	if len(replicas) == 0 {
		return nil, ErrNoOSDs
	}
	if old, ok := s.objects[objKey(bucket, key)]; ok {
		s.dropUsage(old)
	}
	obj := &Object{Bucket: bucket, Key: key, Size: size, Data: data, pg: pg}
	s.objects[objKey(bucket, key)] = obj
	if s.buckets[bucket] == nil {
		s.buckets[bucket] = make(map[string]*Object)
	}
	s.buckets[bucket][key] = obj
	for _, id := range replicas {
		s.osds[id].used += size
	}
	s.publishHealth()
	return append([]string(nil), replicas...), nil
}

func (s *Store) dropUsage(obj *Object) {
	for _, id := range s.pgMap[obj.pg] {
		if o := s.osds[id]; o != nil {
			o.used -= obj.Size
			if o.used < 0 {
				o.used = 0
			}
		}
	}
}

// Get returns the object, or ErrNotFound. Reads succeed while at least one
// replica is on an up OSD.
func (s *Store) Get(bucket, key string) (*Object, error) {
	obj, ok := s.objects[objKey(bucket, key)]
	if !ok {
		return nil, ErrNotFound
	}
	for _, id := range s.pgMap[obj.pg] {
		if s.osds[id].Up {
			return obj, nil
		}
	}
	return nil, fmt.Errorf("%w: %s/%s", ErrAllReplicasDown, bucket, key)
}

// Stat reports whether the object exists and its size.
func (s *Store) Stat(bucket, key string) (float64, bool) {
	obj, ok := s.objects[objKey(bucket, key)]
	if !ok {
		return 0, false
	}
	return obj.Size, true
}

// Delete removes an object; deleting a missing object returns ErrNotFound.
func (s *Store) Delete(bucket, key string) error {
	obj, ok := s.objects[objKey(bucket, key)]
	if !ok {
		return ErrNotFound
	}
	s.dropUsage(obj)
	delete(s.objects, objKey(bucket, key))
	delete(s.buckets[bucket], key)
	s.publishHealth()
	return nil
}

// List returns the keys in a bucket in sorted order.
func (s *Store) List(bucket string) []string {
	var keys []string
	for k := range s.buckets[bucket] {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// BucketSize returns the total logical bytes in a bucket.
func (s *Store) BucketSize(bucket string) float64 {
	sum := 0.0
	for _, obj := range s.buckets[bucket] {
		sum += obj.Size
	}
	return sum
}

// Locations returns the OSD IDs currently holding the object's replicas.
func (s *Store) Locations(bucket, key string) []string {
	obj, ok := s.objects[objKey(bucket, key)]
	if !ok {
		return nil
	}
	return append([]string(nil), s.pgMap[obj.pg]...)
}

// Replica describes one replica placement of an object: which OSD holds it,
// the site that OSD lives at, and whether the daemon is currently up.
type Replica struct {
	OSD  string
	Site string
	Up   bool
}

// ReplicaPlacement resolves an object's current replica set with site and
// liveness detail — the data-gravity query the placement scheduler scores
// nodes against. Returns nil when the object does not exist.
func (s *Store) ReplicaPlacement(bucket, key string) []Replica {
	locs := s.Locations(bucket, key)
	if locs == nil {
		return nil
	}
	out := make([]Replica, 0, len(locs))
	for _, id := range locs {
		r := Replica{OSD: id}
		if o := s.osds[id]; o != nil {
			r.Site, r.Up = o.Site, o.Up
		}
		out = append(out, r)
	}
	return out
}

// PrimarySite returns the site of the object's primary replica, used by the
// workflow layer to source reads over the WAN.
func (s *Store) PrimarySite(bucket, key string) (string, bool) {
	locs := s.Locations(bucket, key)
	for _, id := range locs {
		if o := s.osds[id]; o != nil && o.Up {
			return o.Site, true
		}
	}
	return "", false
}

// FailOSD marks a daemon down and begins recovery: degraded PGs are remapped
// to surviving OSDs and the data they held is re-replicated at the
// configured recovery rate in virtual time. Returns the number of bytes that
// must be recovered.
func (s *Store) FailOSD(id string) (float64, error) {
	o, ok := s.osds[id]
	if !ok {
		return 0, ErrOSDUnknown
	}
	if !o.Up {
		return 0, nil
	}
	o.Up = false
	// Bytes needing re-replication: every object whose PG included this OSD.
	toRecover := 0.0
	for _, obj := range s.objects {
		for _, rid := range s.pgMap[obj.pg] {
			if rid == id {
				toRecover += obj.Size
				break
			}
		}
	}
	s.remap()
	if toRecover > 0 {
		s.recovering = true
		upCount := 0
		for _, od := range s.osds {
			if od.Up {
				upCount++
			}
		}
		rate := s.cfg.RecoveryRate * math.Max(1, float64(upCount))
		d := time.Duration(toRecover / rate * float64(time.Second))
		s.clock.After(d, func() {
			s.recovering = false
			s.publishHealth()
		})
	}
	return toRecover, nil
}

// RecoverOSD brings a failed daemon back up and rebalances onto it.
func (s *Store) RecoverOSD(id string) error {
	o, ok := s.osds[id]
	if !ok {
		return ErrOSDUnknown
	}
	o.Up = true
	s.remap()
	return nil
}

// Recovering reports whether background re-replication is in progress.
func (s *Store) Recovering() bool { return s.recovering }

// HealthReport summarizes PG and capacity state.
func (s *Store) HealthReport() Health {
	h := Health{PGsTotal: s.cfg.PGs}
	for pg := range s.pgMap {
		n := len(s.pgMap[pg])
		switch {
		case n < s.cfg.Replicas && s.recovering:
			h.PGsDegraded++
		case n < s.cfg.Replicas:
			h.PGsUndersized++
		default:
			h.PGsActive++
		}
	}
	for _, obj := range s.objects {
		h.BytesStored += obj.Size
		h.BytesRaw += obj.Size * float64(len(s.pgMap[obj.pg]))
	}
	return h
}

func (s *Store) publishHealth() {
	if s.healthGauge == nil {
		return
	}
	h := s.HealthReport()
	s.healthGauge.Set(float64(h.PGsDegraded + h.PGsUndersized))
	s.storedGauge.Set(h.BytesStored)
}

// TotalCapacity returns summed capacity of up OSDs.
func (s *Store) TotalCapacity() float64 {
	sum := 0.0
	for _, o := range s.osds {
		if o.Up {
			sum += o.Capacity
		}
	}
	return sum
}

// TotalUsed returns raw bytes consumed across up OSDs.
func (s *Store) TotalUsed() float64 {
	sum := 0.0
	for _, o := range s.osds {
		if o.Up {
			sum += o.used
		}
	}
	return sum
}
