package objstore

import (
	"encoding/xml"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
)

// Gateway is the RADOS-gateway stand-in: an S3-flavoured HTTP face over the
// Store, covering the operations the paper's workflows use ("compatible
// with other cloud storage solutions such as Amazon S3 ... via the Ceph
// Object Store"):
//
//	PUT    /{bucket}/{key}        store object (body = content)
//	GET    /{bucket}/{key}        fetch object content
//	HEAD   /{bucket}/{key}        size/existence probe
//	DELETE /{bucket}/{key}        delete object
//	GET    /{bucket}?list         ListBucketResult XML (S3 v1 shape)
//
// Objects written through the gateway carry real bytes; size-only simulated
// objects report their modeled Content-Length on HEAD and return 204 on GET.
//
// The Store itself is single-threaded (simulation-side callers drive it
// from one goroutine), but net/http serves each connection on its own
// goroutine — so every store touch below is serialized behind mu.
type Gateway struct {
	mu      sync.Mutex
	store   *Store
	httpSrv *http.Server
	ln      net.Listener
}

// ServeGateway starts the S3 endpoint on addr ("127.0.0.1:0" for
// ephemeral).
func ServeGateway(store *Store, addr string) (*Gateway, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	g := &Gateway{store: store, ln: ln}
	g.httpSrv = &http.Server{Handler: http.HandlerFunc(g.handle)}
	go g.httpSrv.Serve(ln)
	return g, nil
}

// Addr returns the listening host:port.
func (g *Gateway) Addr() string { return g.ln.Addr().String() }

// BaseURL returns "http://host:port".
func (g *Gateway) BaseURL() string { return "http://" + g.Addr() }

// Close shuts the gateway down.
func (g *Gateway) Close() error { return g.httpSrv.Close() }

// listBucketResult is the minimal S3 ListObjects XML document.
type listBucketResult struct {
	XMLName  xml.Name      `xml:"ListBucketResult"`
	Name     string        `xml:"Name"`
	Contents []listContent `xml:"Contents"`
}

type listContent struct {
	Key  string `xml:"Key"`
	Size int64  `xml:"Size"`
}

func (g *Gateway) handle(w http.ResponseWriter, r *http.Request) {
	path := strings.TrimPrefix(r.URL.Path, "/")
	if path == "" {
		http.Error(w, "missing bucket", http.StatusBadRequest)
		return
	}
	bucket, key, hasKey := strings.Cut(path, "/")
	if !hasKey || key == "" {
		if r.Method == http.MethodGet {
			g.handleList(w, bucket, r.URL.Query().Get("prefix"))
			return
		}
		http.Error(w, "object key required", http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodPut:
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		g.mu.Lock()
		_, err = g.store.Put(bucket, key, float64(len(body)), body)
		g.mu.Unlock()
		if err != nil {
			writeS3Error(w, err)
			return
		}
		w.WriteHeader(http.StatusOK)
	case http.MethodGet:
		g.mu.Lock()
		obj, err := g.store.Get(bucket, key)
		g.mu.Unlock()
		if err != nil {
			writeS3Error(w, err)
			return
		}
		if obj.Data == nil {
			// Size-only simulated object: no content to return.
			w.Header().Set("Content-Length", "0")
			w.WriteHeader(http.StatusNoContent)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", strconv.Itoa(len(obj.Data)))
		w.Write(obj.Data)
	case http.MethodHead:
		g.mu.Lock()
		size, ok := g.store.Stat(bucket, key)
		g.mu.Unlock()
		if !ok {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Length", strconv.FormatInt(int64(size), 10))
		w.WriteHeader(http.StatusOK)
	case http.MethodDelete:
		g.mu.Lock()
		err := g.store.Delete(bucket, key)
		g.mu.Unlock()
		if err != nil {
			writeS3Error(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (g *Gateway) handleList(w http.ResponseWriter, bucket, prefix string) {
	res := listBucketResult{Name: bucket}
	g.mu.Lock()
	for _, key := range g.store.List(bucket) {
		if prefix != "" && !strings.HasPrefix(key, prefix) {
			continue
		}
		size, _ := g.store.Stat(bucket, key)
		res.Contents = append(res.Contents, listContent{Key: key, Size: int64(size)})
	}
	g.mu.Unlock()
	w.Header().Set("Content-Type", "application/xml")
	fmt.Fprint(w, xml.Header)
	xml.NewEncoder(w).Encode(res)
}

func writeS3Error(w http.ResponseWriter, err error) {
	switch err {
	case ErrNotFound:
		http.Error(w, "NoSuchKey", http.StatusNotFound)
	case ErrNoOSDs:
		http.Error(w, "ServiceUnavailable", http.StatusServiceUnavailable)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
