package netsim

import (
	"sync"
	"testing"
	"time"

	"chaseci/internal/sim"
)

func TestLoadGenMaintainsParallelism(t *testing.T) {
	c, n := twoSiteNet(1000)
	lg := n.StartLoad("ucsd", "sdsc", 5, 100)
	if lg.ActiveFlows() != 5 {
		t.Fatalf("active = %d, want 5", lg.ActiveFlows())
	}
	c.RunFor(10 * time.Second)
	if lg.ActiveFlows() != 5 {
		t.Fatalf("active after churn = %d, want 5", lg.ActiveFlows())
	}
	if lg.BytesMoved() <= 0 {
		t.Fatal("no background bytes moved")
	}
	lg.Stop()
	c.RunFor(time.Second)
	if lg.ActiveFlows() != 0 {
		t.Fatalf("active after stop = %d", lg.ActiveFlows())
	}
}

func TestLoadGenStopsReplacing(t *testing.T) {
	c, n := twoSiteNet(1000)
	lg := n.StartLoad("ucsd", "sdsc", 2, 100)
	lg.Stop()
	before := lg.BytesMoved()
	c.RunFor(time.Minute)
	if lg.BytesMoved() != before {
		t.Fatal("stopped load generator kept moving bytes")
	}
	if c.Pending() != 0 {
		t.Fatalf("stopped loadgen left %d pending events", c.Pending())
	}
}

func TestLoadGenCompetesFairly(t *testing.T) {
	// A foreground flow against 4 background flows on one link gets ~1/5 of
	// capacity.
	c, n := twoSiteNet(1000)
	n.StartLoad("ucsd", "sdsc", 4, 1e9)
	fg := n.Transfer("ucsd", "sdsc", 1e6, nil)
	if r := fg.Rate(); r < 190 || r > 210 {
		t.Fatalf("foreground rate = %v, want ~200 (1/5 of 1000)", r)
	}
	_ = c
}

func TestLoadGenRate(t *testing.T) {
	_, n := twoSiteNet(1000)
	lg := n.StartLoad("ucsd", "sdsc", 4, 1e9)
	if r := lg.Rate(); r < 999 || r > 1001 {
		t.Fatalf("background aggregate rate = %v, want ~1000", r)
	}
}

// TestLoadGenStopMidFlight stops the generator while flows are completing
// on another goroutine — the serving stack's actual shape, where the
// fabric clock advances on worker goroutines while a scenario script stops
// the background load. Clock advancement and Stop serialize on an external
// mutex (the network itself is a single-threaded simulation; callers lock
// around it), but the LoadGen accessors race freely against the completion
// callbacks, so -race pins the generator's internal synchronization.
// Functionally: a mid-flight Stop leaves no active flows, and nothing
// relaunches afterwards.
func TestLoadGenStopMidFlight(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		c, n := twoSiteNet(1000)
		lg := n.StartLoad("ucsd", "sdsc", 8, 50) // tiny flows: constant churn
		var clockMu sync.Mutex
		done := make(chan struct{})
		go func() {
			defer close(done)
			// Drive completions (and so LoadGen callbacks) while the main
			// goroutine reads the totals and stops the generator.
			for i := 0; i < 200; i++ {
				clockMu.Lock()
				c.RunFor(10 * time.Millisecond)
				clockMu.Unlock()
			}
		}()
		for i := 0; i < 100; i++ {
			_ = lg.ActiveFlows()
			_ = lg.BytesMoved()
		}
		clockMu.Lock()
		lg.Stop()
		clockMu.Unlock()
		<-done
		if got := lg.ActiveFlows(); got != 0 {
			t.Fatalf("trial %d: %d flows still active after mid-flight Stop", trial, got)
		}
		moved := lg.BytesMoved()
		c.RunFor(time.Minute)
		if lg.ActiveFlows() != 0 || lg.BytesMoved() != moved {
			t.Fatalf("trial %d: stopped loadgen kept running (active=%d moved %v -> %v)",
				trial, lg.ActiveFlows(), moved, lg.BytesMoved())
		}
	}
}

func TestScienceDMZOverprovisioning(t *testing.T) {
	// The paper's Science DMZ claim: overprovisioned research links keep a
	// science flow fast despite background tenants elsewhere. Background on
	// a fat link (100 Gbps) must not slow a flow crossing a separate thin
	// bottleneck (1 Gbps).
	clk := sim.NewClock()
	n := NewNetwork(clk, nil)
	for _, s := range []string{"dtn", "core", "lab"} {
		n.AddSite(s)
	}
	n.AddLink("dtn", "core", Gbps(1), 0)       // science source bottleneck
	n.AddLink("core", "lab", Gbps(100), 0)     // fat backbone to the lab
	lg := n.StartLoad("core", "lab", 20, 1e12) // heavy tenant load on backbone
	var doneAt time.Duration
	n.Transfer("dtn", "lab", 125e9, func() { doneAt = clk.Now() }) // 125 GB at 1 Gbps = 1000s
	clk.RunWhile(func() bool { return doneAt == 0 })
	lg.Stop()
	// With no contention the flow takes 1000s; background on the fat link
	// must cost < 3%.
	if doneAt > 1030*time.Second {
		t.Fatalf("science flow took %v under background load, want ~1000s", doneAt)
	}
}
