package netsim

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"chaseci/internal/metrics"
	"chaseci/internal/sim"
)

func twoSiteNet(capacity float64) (*sim.Clock, *Network) {
	c := sim.NewClock()
	n := NewNetwork(c, nil)
	n.AddSite("ucsd")
	n.AddSite("sdsc")
	n.AddLink("ucsd", "sdsc", capacity, 0)
	return c, n
}

func TestSingleFlowUsesFullLink(t *testing.T) {
	c, n := twoSiteNet(100) // 100 B/s
	done := false
	n.Transfer("ucsd", "sdsc", 1000, func() { done = true })
	c.Run()
	if !done {
		t.Fatal("flow never completed")
	}
	if got, want := c.Now(), 10*time.Second; !near(got, want) {
		t.Fatalf("completion at %v, want ~%v", got, want)
	}
}

func TestTwoFlowsShareLinkEqually(t *testing.T) {
	c, n := twoSiteNet(100)
	var done int
	f1 := n.Transfer("ucsd", "sdsc", 1000, func() { done++ })
	f2 := n.Transfer("ucsd", "sdsc", 1000, func() { done++ })
	if f1.Rate() != 50 || f2.Rate() != 50 {
		t.Fatalf("rates = %v, %v, want 50, 50", f1.Rate(), f2.Rate())
	}
	c.Run()
	if done != 2 {
		t.Fatalf("done = %d, want 2", done)
	}
	if got, want := c.Now(), 20*time.Second; !near(got, want) {
		t.Fatalf("completion at %v, want ~%v", got, want)
	}
}

func TestShortFlowFinishesThenLongSpeedsUp(t *testing.T) {
	c, n := twoSiteNet(100)
	var shortAt, longAt time.Duration
	n.Transfer("ucsd", "sdsc", 500, func() { shortAt = c.Now() })
	n.Transfer("ucsd", "sdsc", 1500, func() { longAt = c.Now() })
	c.Run()
	// Both at 50 B/s until short finishes at t=10; long then has 1000 bytes
	// left at 100 B/s, finishing at t=20.
	if !near(shortAt, 10*time.Second) {
		t.Fatalf("short finished at %v, want ~10s", shortAt)
	}
	if !near(longAt, 20*time.Second) {
		t.Fatalf("long finished at %v, want ~20s", longAt)
	}
}

func TestLatencyDelaysStart(t *testing.T) {
	c := sim.NewClock()
	n := NewNetwork(c, nil)
	n.AddSite("a")
	n.AddSite("b")
	n.AddLink("a", "b", 100, 2*time.Second)
	var doneAt time.Duration
	n.Transfer("a", "b", 100, func() { doneAt = c.Now() })
	c.Run()
	if !near(doneAt, 3*time.Second) { // 2s latency + 1s transfer
		t.Fatalf("done at %v, want ~3s", doneAt)
	}
}

func TestMultiHopBottleneck(t *testing.T) {
	c := sim.NewClock()
	n := NewNetwork(c, nil)
	for _, s := range []string{"a", "b", "c"} {
		n.AddSite(s)
	}
	n.AddLink("a", "b", 1000, 0)
	n.AddLink("b", "c", 10, 0) // bottleneck
	f := n.Transfer("a", "c", 100, nil)
	if f.Rate() != 10 {
		t.Fatalf("rate = %v, want bottleneck 10", f.Rate())
	}
	c.Run()
	if !near(c.Now(), 10*time.Second) {
		t.Fatalf("completed at %v, want ~10s", c.Now())
	}
}

func TestMaxMinUnevenPaths(t *testing.T) {
	// Classic max-min example: flows A->C and B->C share link X->C (cap 100);
	// flow A->X alone on link A->X (cap 30). The A->C flow is limited to 30 by
	// its first hop, so B->C should get the leftover 70, not 50.
	c := sim.NewClock()
	n := NewNetwork(c, nil)
	for _, s := range []string{"a", "x", "cst"} {
		n.AddSite(s)
	}
	n.AddLink("a", "x", 30, 0)
	n.AddLink("x", "cst", 100, 0)
	fa := n.Transfer("a", "cst", 1e6, nil)
	fb := n.Transfer("x", "cst", 1e6, nil)
	if fa.Rate() != 30 {
		t.Fatalf("constrained flow rate = %v, want 30", fa.Rate())
	}
	if fb.Rate() != 70 {
		t.Fatalf("unconstrained flow rate = %v, want 70 (max-min), got equal-split instead?", fb.Rate())
	}
}

func TestCancelFreesBandwidth(t *testing.T) {
	c, n := twoSiteNet(100)
	f1 := n.Transfer("ucsd", "sdsc", 1e6, nil)
	f2 := n.Transfer("ucsd", "sdsc", 1000, nil)
	if f2.Rate() != 50 {
		t.Fatalf("pre-cancel rate = %v, want 50", f2.Rate())
	}
	f1.Cancel()
	if f2.Rate() != 100 {
		t.Fatalf("post-cancel rate = %v, want 100", f2.Rate())
	}
	c.Run()
	if f1.Done() {
		t.Fatal("cancelled flow reported done")
	}
	if !f2.Done() {
		t.Fatal("surviving flow did not complete")
	}
}

func TestCancelledCallbackNeverFires(t *testing.T) {
	c, n := twoSiteNet(100)
	fired := false
	f := n.Transfer("ucsd", "sdsc", 100, func() { fired = true })
	f.Cancel()
	c.Run()
	if fired {
		t.Fatal("cancelled flow's callback fired")
	}
}

func TestSameSiteTransfer(t *testing.T) {
	c, n := twoSiteNet(100)
	done := false
	n.Transfer("ucsd", "ucsd", 1e9, func() { done = true })
	c.Run()
	if !done {
		t.Fatal("local transfer did not complete")
	}
	if c.Now() > time.Second {
		t.Fatalf("local transfer took %v, want well under 1s", c.Now())
	}
}

func TestNoPathPanics(t *testing.T) {
	c := sim.NewClock()
	n := NewNetwork(c, nil)
	n.AddSite("a")
	n.AddSite("b") // no link
	defer func() {
		if recover() == nil {
			t.Fatal("Transfer with no path did not panic")
		}
	}()
	n.Transfer("a", "b", 1, nil)
}

func TestZeroByteTransferCompletes(t *testing.T) {
	c, n := twoSiteNet(100)
	done := false
	n.Transfer("ucsd", "sdsc", 0, func() { done = true })
	c.Run()
	if !done {
		t.Fatal("zero-byte flow never completed")
	}
}

func TestPathShortestHops(t *testing.T) {
	c := sim.NewClock()
	n := NewNetwork(c, nil)
	for _, s := range []string{"a", "b", "c", "d"} {
		n.AddSite(s)
	}
	n.AddLink("a", "b", 1, 0)
	n.AddLink("b", "c", 1, 0)
	n.AddLink("c", "d", 1, 0)
	n.AddLink("a", "d", 1, 0) // direct
	p := n.Path("a", "d")
	if len(p) != 1 {
		t.Fatalf("path has %d hops, want 1 (direct link)", len(p))
	}
}

func TestLinkUtilizationMetrics(t *testing.T) {
	c := sim.NewClock()
	reg := metrics.NewRegistry(c)
	n := NewNetwork(c, reg)
	n.AddSite("a")
	n.AddSite("b")
	n.AddLink("a", "b", 100, 0)
	n.Transfer("a", "b", 1000, nil)
	ss := reg.Select("net_link_bytes_per_sec", nil)
	if len(ss) != 1 {
		t.Fatalf("got %d link series, want 1", len(ss))
	}
	if ss[0].Last().Value != 100 {
		t.Fatalf("link utilization = %v, want 100", ss[0].Last().Value)
	}
}

func TestAggregateRate(t *testing.T) {
	_, n := twoSiteNet(100)
	n.Transfer("ucsd", "sdsc", 1e6, nil)
	n.Transfer("ucsd", "sdsc", 1e6, nil)
	if got := n.AggregateRate("sdsc"); got != 100 {
		t.Fatalf("aggregate rate = %v, want 100", got)
	}
}

func TestManyFlowsConservation(t *testing.T) {
	// Total allocated rate on the shared link never exceeds capacity, and all
	// flows eventually finish.
	c, n := twoSiteNet(Gbps(10))
	const flows = 200
	done := 0
	for i := 0; i < flows; i++ {
		n.Transfer("ucsd", "sdsc", 1e9+float64(i)*1e7, func() { done++ })
	}
	sum := 0.0
	for f := range n.flows {
		sum += f.rate
	}
	if sum > Gbps(10)*1.0001 {
		t.Fatalf("allocated %v B/s exceeds capacity %v", sum, Gbps(10))
	}
	c.Run()
	if done != flows {
		t.Fatalf("completed %d/%d flows", done, flows)
	}
}

func TestPropertyFairnessInvariants(t *testing.T) {
	// For random flow sets on a random 3-site chain, max-min allocation must
	// (1) never oversubscribe a link and (2) give equal rates to flows with
	// identical paths.
	f := func(seed uint64, nFlowsRaw uint8) bool {
		rng := sim.NewRNG(seed)
		nFlows := int(nFlowsRaw%20) + 1
		c := sim.NewClock()
		n := NewNetwork(c, nil)
		for _, s := range []string{"a", "b", "cst"} {
			n.AddSite(s)
		}
		cap1 := 10 + rng.Float64()*1000
		cap2 := 10 + rng.Float64()*1000
		n.AddLink("a", "b", cap1, 0)
		n.AddLink("b", "cst", cap2, 0)
		var byPath [2][]*Flow
		for i := 0; i < nFlows; i++ {
			if rng.Intn(2) == 0 {
				byPath[0] = append(byPath[0], n.Transfer("a", "cst", 1e12, nil))
			} else {
				byPath[1] = append(byPath[1], n.Transfer("b", "cst", 1e12, nil))
			}
		}
		// Flows admit synchronously on zero-latency links.
		// Equal path => equal rate.
		for _, group := range byPath {
			for i := 1; i < len(group); i++ {
				if math.Abs(group[i].Rate()-group[0].Rate()) > 1e-6 {
					return false
				}
			}
		}
		// No link oversubscribed.
		sumAC, sumBC := 0.0, 0.0
		for _, fl := range byPath[0] {
			sumAC += fl.Rate()
		}
		for _, fl := range byPath[1] {
			sumBC += fl.Rate()
		}
		if sumAC > cap1*1.0001 {
			return false
		}
		if sumAC+sumBC > cap2*1.0001 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func near(got, want time.Duration) bool {
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	return diff <= want/100+time.Millisecond
}

func TestLossDegradesEffectiveCapacity(t *testing.T) {
	c, n := twoSiteNet(100)
	if err := n.SetLink("ucsd", "sdsc", LossFrac(0.5)); err != nil {
		t.Fatal(err)
	}
	var doneAt time.Duration
	n.Transfer("ucsd", "sdsc", 1000, func() { doneAt = c.Now() })
	c.Run()
	// 50% loss halves the goodput: 1000 B at 50 B/s = 20s.
	if !near(doneAt, 20*time.Second) {
		t.Fatalf("lossy transfer finished at %v, want ~20s", doneAt)
	}
}

func TestLinkDownStallsAndRestoreResumes(t *testing.T) {
	c, n := twoSiteNet(100)
	var doneAt time.Duration
	f := n.Transfer("ucsd", "sdsc", 1000, func() { doneAt = c.Now() })
	// Halfway through, the link dies for 10 virtual seconds.
	c.At(5*time.Second, func() { n.SetLink("ucsd", "sdsc", LinkDown(true)) })
	c.At(15*time.Second, func() { n.SetLink("ucsd", "sdsc", LinkDown(false)) })
	c.Run()
	if !f.Done() {
		t.Fatalf("flow never completed (remaining %.0f)", f.Remaining())
	}
	// 5s at 100 B/s, 10s stalled, then 500 B at 100 B/s: done at t=20.
	if !near(doneAt, 20*time.Second) {
		t.Fatalf("transfer finished at %v, want ~20s", doneAt)
	}
}

func TestDownLinkExcludedFromRouting(t *testing.T) {
	c := sim.NewClock()
	n := NewNetwork(c, nil)
	for _, s := range []string{"a", "b", "c"} {
		n.AddSite(s)
	}
	n.AddLink("a", "b", 100, 0)
	n.AddLink("a", "c", 100, 0)
	n.AddLink("c", "b", 100, 0)
	if got := len(n.Path("a", "b")); got != 1 {
		t.Fatalf("direct path = %d hops, want 1", got)
	}
	if err := n.SetLink("a", "b", LinkDown(true)); err != nil {
		t.Fatal(err)
	}
	if got := len(n.Path("a", "b")); got != 2 {
		t.Fatalf("path with direct link down = %d hops, want 2 (via c)", got)
	}
	if err := n.SetLink("a", "b", LinkDown(false)); err != nil {
		t.Fatal(err)
	}
	if got := len(n.Path("a", "b")); got != 1 {
		t.Fatalf("path after restore = %d hops, want 1", got)
	}
}

func TestApplyTraceBandwidthCollapse(t *testing.T) {
	c, n := twoSiteNet(100)
	err := n.ApplyTrace("ucsd", "sdsc", []TracePoint{
		{At: 5 * time.Second, Change: CapacityBps(10)},
		{At: 10 * time.Second, Change: CapacityBps(100)},
	})
	if err != nil {
		t.Fatal(err)
	}
	var doneAt time.Duration
	n.Transfer("ucsd", "sdsc", 1000, func() { doneAt = c.Now() })
	c.Run()
	// 5s at 100 B/s (500 B) + 5s at 10 B/s (50 B) + 4.5s at 100 B/s (450 B).
	if !near(doneAt, 14*time.Second+500*time.Millisecond) {
		t.Fatalf("traced transfer finished at %v, want ~14.5s", doneAt)
	}
}

func TestSetLinkValidation(t *testing.T) {
	_, n := twoSiteNet(100)
	if err := n.SetLink("ucsd", "nowhere", LinkDown(true)); err == nil {
		t.Fatal("SetLink on unknown link succeeded")
	}
	if err := n.SetLink("ucsd", "sdsc", LossFrac(1.5)); err == nil {
		t.Fatal("SetLink accepted loss >= 1")
	}
	if err := n.SetLink("ucsd", "sdsc", CapacityBps(-1)); err == nil {
		t.Fatal("SetLink accepted negative capacity")
	}
	if err := n.ApplyTrace("ucsd", "nowhere", nil); err == nil {
		t.Fatal("ApplyTrace on unknown link succeeded")
	}
}
