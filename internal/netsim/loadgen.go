package netsim

import (
	"sync"
	"time"
)

// LoadGen keeps a fixed number of background flows alive between two sites,
// modeling other tenants' traffic on the shared PRP. The Science DMZ
// argument of Section II is that overprovisioned research links keep
// foreground science flows fast even under such load; the ablation bench
// measures exactly that.
//
// The generator is safe for concurrent use: completion callbacks fire on
// whichever goroutine advances the network clock, which in the serving
// stack is not the goroutine that calls Stop or reads the totals, so all
// mutable state lives behind one mutex. The active set is a map, making
// per-completion removal O(1) instead of the O(n) slice scan that used to
// run on every finished flow.
type LoadGen struct {
	net       *Network
	src, dst  string
	flowBytes float64
	parallel  int

	mu         sync.Mutex
	stopped    bool
	active     map[*Flow]struct{}
	bytesMoved float64
}

// StartLoad launches parallel continuous flows of flowBytes each from src to
// dst; every completed flow is immediately replaced until Stop.
func (n *Network) StartLoad(src, dst string, parallel int, flowBytes float64) *LoadGen {
	if parallel <= 0 {
		parallel = 1
	}
	if flowBytes <= 0 {
		flowBytes = 1e9
	}
	lg := &LoadGen{
		net: n, src: src, dst: dst,
		flowBytes: flowBytes, parallel: parallel,
		active: make(map[*Flow]struct{}, parallel),
	}
	for i := 0; i < parallel; i++ {
		lg.launch()
	}
	return lg
}

func (lg *LoadGen) launch() {
	lg.mu.Lock()
	if lg.stopped {
		lg.mu.Unlock()
		return
	}
	var f *Flow
	f = lg.net.Transfer(lg.src, lg.dst, lg.flowBytes, func() {
		lg.mu.Lock()
		lg.bytesMoved += lg.flowBytes
		delete(lg.active, f)
		lg.mu.Unlock()
		lg.launch()
	})
	lg.active[f] = struct{}{}
	lg.mu.Unlock()
}

// Stop cancels all background flows; no replacements start. A flow that
// completes concurrently with Stop may still count its bytes, but nothing
// new launches afterwards.
func (lg *LoadGen) Stop() {
	lg.mu.Lock()
	lg.stopped = true
	flows := make([]*Flow, 0, len(lg.active))
	for f := range lg.active {
		flows = append(flows, f)
	}
	lg.active = make(map[*Flow]struct{})
	lg.mu.Unlock()
	// Cancel outside the mutex: a cancelled flow's callback never fires,
	// but the network's own bookkeeping runs under its clock and must not
	// nest inside lg.mu.
	for _, f := range flows {
		f.Cancel()
	}
}

// BytesMoved totals the background traffic delivered so far.
func (lg *LoadGen) BytesMoved() float64 {
	lg.mu.Lock()
	defer lg.mu.Unlock()
	return lg.bytesMoved
}

// ActiveFlows returns the number of live background flows.
func (lg *LoadGen) ActiveFlows() int {
	lg.mu.Lock()
	defer lg.mu.Unlock()
	return len(lg.active)
}

// Rate returns the current aggregate background bytes/second.
func (lg *LoadGen) Rate() float64 {
	lg.mu.Lock()
	defer lg.mu.Unlock()
	sum := 0.0
	for f := range lg.active {
		sum += f.Rate()
	}
	return sum
}

// Drain runs the clock until all load flows finish after Stop; useful in
// tests that must end with an empty event queue.
func (lg *LoadGen) Drain(horizon time.Duration) {
	lg.net.clock.RunFor(horizon)
}
