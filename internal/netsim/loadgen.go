package netsim

import "time"

// LoadGen keeps a fixed number of background flows alive between two sites,
// modeling other tenants' traffic on the shared PRP. The Science DMZ
// argument of Section II is that overprovisioned research links keep
// foreground science flows fast even under such load; the ablation bench
// measures exactly that.
type LoadGen struct {
	net       *Network
	src, dst  string
	flowBytes float64
	parallel  int
	stopped   bool
	active    []*Flow

	// BytesMoved totals the background traffic delivered.
	BytesMoved float64
}

// StartLoad launches parallel continuous flows of flowBytes each from src to
// dst; every completed flow is immediately replaced until Stop.
func (n *Network) StartLoad(src, dst string, parallel int, flowBytes float64) *LoadGen {
	if parallel <= 0 {
		parallel = 1
	}
	if flowBytes <= 0 {
		flowBytes = 1e9
	}
	lg := &LoadGen{net: n, src: src, dst: dst, flowBytes: flowBytes, parallel: parallel}
	for i := 0; i < parallel; i++ {
		lg.launch()
	}
	return lg
}

func (lg *LoadGen) launch() {
	if lg.stopped {
		return
	}
	var f *Flow
	f = lg.net.Transfer(lg.src, lg.dst, lg.flowBytes, func() {
		lg.BytesMoved += lg.flowBytes
		lg.prune(f)
		lg.launch()
	})
	lg.active = append(lg.active, f)
}

func (lg *LoadGen) prune(done *Flow) {
	for i, f := range lg.active {
		if f == done {
			lg.active = append(lg.active[:i], lg.active[i+1:]...)
			return
		}
	}
}

// Stop cancels all background flows; no replacements start.
func (lg *LoadGen) Stop() {
	lg.stopped = true
	for _, f := range lg.active {
		f.Cancel()
	}
	lg.active = nil
}

// ActiveFlows returns the number of live background flows.
func (lg *LoadGen) ActiveFlows() int { return len(lg.active) }

// Rate returns the current aggregate background bytes/second.
func (lg *LoadGen) Rate() float64 {
	sum := 0.0
	for _, f := range lg.active {
		sum += f.Rate()
	}
	return sum
}

// Drain runs the clock until all load flows finish after Stop; useful in
// tests that must end with an empty event queue.
func (lg *LoadGen) Drain(horizon time.Duration) {
	lg.net.clock.RunFor(horizon)
}
