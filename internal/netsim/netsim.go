// Package netsim models the Pacific Research Platform wide-area network that
// CHASE-CI runs on: named sites (UCSD, Calit2, SDSC, partner campuses)
// connected by 10/40/100 Gbps links. Data movement is simulated with a fluid
// flow model: every active transfer receives a max-min fair share of the
// links along its path, recomputed whenever a flow starts or finishes, and
// progress advances in virtual time on the shared sim.Clock. This reproduces
// the bandwidth/contention shapes behind the paper's Figures 3 and 4
// (10 download workers x 20 parallel aria2 streams sharing the DTN uplink).
package netsim

import (
	"fmt"
	"math"
	"sort"
	"time"

	"chaseci/internal/metrics"
	"chaseci/internal/sim"
)

// Gbps converts gigabits/second to the simulator's bytes/second unit.
func Gbps(g float64) float64 { return g * 1e9 / 8 }

// Network is a topology of sites and links plus the set of active flows.
type Network struct {
	clock *sim.Clock
	reg   *metrics.Registry

	sites map[string]*Site
	links []*Link

	flows      map[*Flow]struct{}
	lastUpdate time.Duration
	completion *sim.Timer

	pathCache map[[2]string][]*Link
}

// Site is a network endpoint (a campus / DTN location).
type Site struct {
	Name string
}

// Link is a bidirectional pipe between two sites with a fixed capacity in
// bytes/second and a propagation latency. Capacity is shared by flows in
// both directions, matching a full-duplex fiber's per-direction limit being
// dominated by the DTN NIC in the paper's deployments.
//
// Loss and Down model hostile wide-area conditions: Loss is the fraction of
// capacity eaten by retransmission on a lossy path (the fluid-model view of
// packet loss under a loss-tolerant transport), and a Down link carries
// nothing and is excluded from routing until it comes back. Both are mutated
// at runtime through Network.SetLink / ApplyTrace.
type Link struct {
	A, B     string
	Capacity float64 // bytes per second
	Latency  time.Duration
	Loss     float64 // fraction of capacity lost to retransmission [0, 1)
	Down     bool    // a down link carries no traffic and routes nothing

	util *metrics.Gauge
}

func (l *Link) String() string { return fmt.Sprintf("%s<->%s", l.A, l.B) }

// EffectiveCapacity is the goodput ceiling under the link's current
// condition: zero when down, capacity degraded by the loss fraction
// otherwise.
func (l *Link) EffectiveCapacity() float64 {
	if l.Down {
		return 0
	}
	return l.Capacity * (1 - l.Loss)
}

// Flow is one in-flight transfer.
type Flow struct {
	Src, Dst string

	net        *Network
	path       []*Link
	remaining  float64 // bytes left to move
	total      float64
	rate       float64 // current fair-share allocation, bytes/sec
	onComplete func()
	cancelled  bool
	started    time.Duration
	finished   time.Duration
	done       bool
}

// Rate returns the flow's current bytes/second allocation.
func (f *Flow) Rate() float64 { return f.rate }

// Remaining returns bytes not yet transferred.
func (f *Flow) Remaining() float64 { return f.remaining }

// Transferred returns bytes moved so far.
func (f *Flow) Transferred() float64 { return f.total - f.remaining }

// Done reports whether the flow completed (not cancelled).
func (f *Flow) Done() bool { return f.done }

// Elapsed returns the flow's duration; valid once Done.
func (f *Flow) Elapsed() time.Duration { return f.finished - f.started }

// NewNetwork creates an empty network on the given clock. reg may be nil to
// disable metric recording.
func NewNetwork(clock *sim.Clock, reg *metrics.Registry) *Network {
	return &Network{
		clock:     clock,
		reg:       reg,
		sites:     make(map[string]*Site),
		flows:     make(map[*Flow]struct{}),
		pathCache: make(map[[2]string][]*Link),
	}
}

// AddSite registers a site; adding an existing name is a no-op.
func (n *Network) AddSite(name string) *Site {
	if s, ok := n.sites[name]; ok {
		return s
	}
	s := &Site{Name: name}
	n.sites[name] = s
	return s
}

// AddLink connects two existing sites. It panics if either site is unknown,
// since a mis-wired topology is a programming error in experiment setup.
func (n *Network) AddLink(a, b string, capacity float64, latency time.Duration) *Link {
	if _, ok := n.sites[a]; !ok {
		panic("netsim: AddLink to unknown site " + a)
	}
	if _, ok := n.sites[b]; !ok {
		panic("netsim: AddLink to unknown site " + b)
	}
	if capacity <= 0 {
		panic("netsim: AddLink with non-positive capacity")
	}
	l := &Link{A: a, B: b, Capacity: capacity, Latency: latency}
	if n.reg != nil {
		l.util = n.reg.Gauge("net_link_bytes_per_sec", metrics.Labels{"link": l.String()})
	}
	n.links = append(n.links, l)
	n.pathCache = make(map[[2]string][]*Link) // topology changed
	return l
}

// ActiveFlows returns the number of in-flight transfers.
func (n *Network) ActiveFlows() int { return len(n.flows) }

// Links returns the topology's links. The slice is shared — callers mutate
// link state only through SetLink.
func (n *Network) Links() []*Link { return n.links }

// Link returns the link joining two sites (in either direction), or nil.
func (n *Network) Link(a, b string) *Link {
	for _, l := range n.links {
		if (l.A == a && l.B == b) || (l.A == b && l.B == a) {
			return l
		}
	}
	return nil
}

// LinkChange is a partial update to a link's condition: nil fields keep the
// current value. It is the unit of both one-shot SetLink calls and
// trace-driven schedules.
type LinkChange struct {
	Capacity *float64
	Latency  *time.Duration
	Loss     *float64
	Down     *bool
}

// Change builders for declarative scripts.

// CapacityBps returns a LinkChange setting only the capacity.
func CapacityBps(bps float64) LinkChange { return LinkChange{Capacity: &bps} }

// LossFrac returns a LinkChange setting only the loss fraction.
func LossFrac(f float64) LinkChange { return LinkChange{Loss: &f} }

// LinkDown returns a LinkChange taking the link down or up.
func LinkDown(down bool) LinkChange { return LinkChange{Down: &down} }

// SetLink applies a condition change to the link between a and b: active
// flows are settled at their old rates first, then fair shares are
// recomputed under the new condition. Taking a link down stalls flows routed
// over it (rate zero) until it comes back; routing (Path) excludes it
// immediately.
func (n *Network) SetLink(a, b string, ch LinkChange) error {
	l := n.Link(a, b)
	if l == nil {
		return fmt.Errorf("netsim: no link %s<->%s", a, b)
	}
	n.settle()
	if ch.Capacity != nil {
		if *ch.Capacity <= 0 {
			return fmt.Errorf("netsim: non-positive capacity for %s", l)
		}
		l.Capacity = *ch.Capacity
	}
	if ch.Latency != nil {
		l.Latency = *ch.Latency
	}
	if ch.Loss != nil {
		if *ch.Loss < 0 || *ch.Loss >= 1 {
			return fmt.Errorf("netsim: loss %g out of [0,1) for %s", *ch.Loss, l)
		}
		l.Loss = *ch.Loss
	}
	if ch.Down != nil {
		l.Down = *ch.Down
	}
	n.pathCache = make(map[[2]string][]*Link) // routing may have changed
	n.reallocate()
	return nil
}

// TracePoint is one step of a recorded network-condition trace.
type TracePoint struct {
	At     time.Duration // virtual time the change takes effect
	Change LinkChange
}

// ApplyTrace schedules a sequence of condition changes on the link between a
// and b at absolute virtual times — the replay mechanism for measured WAN
// traces (congestion collapse, loss storms, maintenance windows). The trace
// is validated against the topology up front; each point fires on the shared
// clock.
func (n *Network) ApplyTrace(a, b string, trace []TracePoint) error {
	if n.Link(a, b) == nil {
		return fmt.Errorf("netsim: no link %s<->%s", a, b)
	}
	for _, p := range trace {
		ch := p.Change
		n.clock.At(p.At, func() { n.SetLink(a, b, ch) })
	}
	return nil
}

// Transfer starts moving size bytes from src to dst and returns the flow.
// onComplete (may be nil) fires in virtual time when the last byte lands.
// Same-site transfers complete after a nominal LAN time at 10 GB/s.
// Transfer panics if no path exists: experiments must use connected
// topologies.
func (n *Network) Transfer(src, dst string, size float64, onComplete func()) *Flow {
	if size < 0 {
		panic("netsim: negative transfer size")
	}
	f := &Flow{
		Src: src, Dst: dst, net: n,
		remaining: size, total: size,
		onComplete: onComplete,
		started:    n.clock.Now(),
	}
	if src == dst {
		// Local copy: model as a fixed-rate local disk/loopback move.
		const localRate = 10e9
		d := time.Duration(size / localRate * float64(time.Second))
		n.clock.After(d, func() {
			f.remaining = 0
			f.done = true
			f.finished = n.clock.Now()
			if onComplete != nil {
				onComplete()
			}
		})
		return f
	}
	path := n.Path(src, dst)
	if path == nil {
		panic(fmt.Sprintf("netsim: no path %s -> %s", src, dst))
	}
	f.path = path
	// Propagation delay before the stream starts filling the pipe. With no
	// latency the flow is admitted synchronously so that callers observe
	// rates immediately after Transfer returns.
	var lat time.Duration
	for _, l := range path {
		lat += l.Latency
	}
	admit := func() {
		if f.cancelled {
			return
		}
		n.settle()
		n.flows[f] = struct{}{}
		n.reallocate()
	}
	if lat == 0 {
		admit()
	} else {
		n.clock.After(lat, admit)
	}
	return f
}

// Cancel aborts an in-flight flow; its completion callback never fires.
func (f *Flow) Cancel() {
	if f.done || f.cancelled {
		return
	}
	f.cancelled = true
	if _, active := f.net.flows[f]; active {
		f.net.settle()
		delete(f.net.flows, f)
		f.net.reallocate()
	}
}

// Path returns the minimum-hop link path between two sites (BFS), or nil.
func (n *Network) Path(src, dst string) []*Link {
	key := [2]string{src, dst}
	if p, ok := n.pathCache[key]; ok {
		return p
	}
	adj := make(map[string][]*Link)
	for _, l := range n.links {
		adj[l.A] = append(adj[l.A], l)
		adj[l.B] = append(adj[l.B], l)
	}
	type hop struct {
		site string
		via  *Link
		prev *hop
	}
	visited := map[string]bool{src: true}
	queue := []*hop{{site: src}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.site == dst {
			var path []*Link
			for h := cur; h.via != nil; h = h.prev {
				path = append([]*Link{h.via}, path...)
			}
			n.pathCache[key] = path
			return path
		}
		for _, l := range adj[cur.site] {
			if l.Down {
				continue
			}
			next := l.A
			if next == cur.site {
				next = l.B
			}
			if !visited[next] {
				visited[next] = true
				queue = append(queue, &hop{site: next, via: l, prev: cur})
			}
		}
	}
	n.pathCache[key] = nil
	return nil
}

// settle advances every active flow's progress to the current instant at its
// last-computed rate. Must be called before the flow set or rates change.
func (n *Network) settle() {
	now := n.clock.Now()
	dt := (now - n.lastUpdate).Seconds()
	n.lastUpdate = now
	if dt <= 0 {
		return
	}
	for f := range n.flows {
		f.remaining -= f.rate * dt
		if f.remaining < 1e-6 {
			f.remaining = 0
		}
	}
}

// reallocate recomputes max-min fair rates, completes finished flows, and
// schedules the next completion event.
func (n *Network) reallocate() {
	// Complete any flows that have drained.
	var finished []*Flow
	for f := range n.flows {
		if f.remaining <= 0 {
			finished = append(finished, f)
		}
	}
	// Deterministic completion order.
	sort.Slice(finished, func(i, j int) bool {
		if finished[i].started != finished[j].started {
			return finished[i].started < finished[j].started
		}
		return finished[i].Src+finished[i].Dst < finished[j].Src+finished[j].Dst
	})
	for _, f := range finished {
		delete(n.flows, f)
		f.done = true
		f.finished = n.clock.Now()
	}

	n.assignFairShares()
	n.recordLinkUtilization()

	if n.completion != nil {
		n.completion.Stop()
		n.completion = nil
	}
	next := time.Duration(math.MaxInt64)
	any := false
	for f := range n.flows {
		if f.rate <= 0 {
			continue
		}
		eta := time.Duration(f.remaining / f.rate * float64(time.Second))
		if eta < time.Nanosecond {
			eta = time.Nanosecond
		}
		if eta < next {
			next = eta
			any = true
		}
	}
	if any {
		n.completion = n.clock.After(next, func() {
			n.settle()
			n.reallocate()
		})
	}

	// Fire callbacks after state is consistent; callbacks may start new flows.
	for _, f := range finished {
		if f.onComplete != nil {
			f.onComplete()
		}
	}
}

// assignFairShares runs progressive water-filling: repeatedly find the most
// constrained link (smallest capacity-per-unfrozen-flow), freeze its flows at
// that share, subtract, and continue. The result is the classic max-min fair
// allocation: no flow can gain rate without a frozen flow on its bottleneck
// losing some.
func (n *Network) assignFairShares() {
	remainingCap := make(map[*Link]float64, len(n.links))
	for _, l := range n.links {
		remainingCap[l] = l.EffectiveCapacity()
	}
	unfrozen := make(map[*Flow]struct{}, len(n.flows))
	for f := range n.flows {
		f.rate = 0
		if len(f.path) > 0 {
			unfrozen[f] = struct{}{}
		}
	}
	countOn := func(l *Link) int {
		c := 0
		for f := range unfrozen {
			for _, fl := range f.path {
				if fl == l {
					c++
					break
				}
			}
		}
		return c
	}
	for len(unfrozen) > 0 {
		// Find bottleneck link.
		var bottleneck *Link
		best := math.Inf(1)
		for _, l := range n.links {
			c := countOn(l)
			if c == 0 {
				continue
			}
			share := remainingCap[l] / float64(c)
			if share < best {
				best = share
				bottleneck = l
			}
		}
		if bottleneck == nil {
			break // flows with pathless state; nothing to allocate
		}
		// Freeze all unfrozen flows crossing the bottleneck at `best`.
		for f := range unfrozen {
			crosses := false
			for _, fl := range f.path {
				if fl == bottleneck {
					crosses = true
					break
				}
			}
			if !crosses {
				continue
			}
			f.rate = best
			for _, fl := range f.path {
				remainingCap[fl] -= best
				if remainingCap[fl] < 0 {
					remainingCap[fl] = 0
				}
			}
			delete(unfrozen, f)
		}
	}
}

func (n *Network) recordLinkUtilization() {
	if n.reg == nil {
		return
	}
	for _, l := range n.links {
		sum := 0.0
		for f := range n.flows {
			for _, fl := range f.path {
				if fl == l {
					sum += f.rate
					break
				}
			}
		}
		l.util.Set(sum)
	}
}

// AggregateRate returns the total bytes/second currently flowing into dst,
// the quantity plotted as "throughput" in the Fig 4 reproduction.
func (n *Network) AggregateRate(dst string) float64 {
	sum := 0.0
	for f := range n.flows {
		if f.Dst == dst {
			sum += f.rate
		}
	}
	return sum
}
