package api

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// tinyVolume returns a valid inline 2x2x2 source.
func tinyVolume() VolumeSource {
	return VolumeSource{D: 2, H: 2, W: 2, Data: make([]float32, 8)}
}

// validRequests returns one well-formed request per kind.
func validRequests() map[Kind]*JobRequest {
	return map[Kind]*JobRequest{
		KindSegment: {Kind: KindSegment, Segment: &SegmentSpec{
			Source: tinyVolume(), Seeds: [][3]int{{1, 1, 1}}, MaxSteps: 4,
		}},
		KindLabel: {Kind: KindLabel, Label: &LabelSpec{
			Source: tinyVolume(), Threshold: 0.5,
		}},
		KindIVT: {Kind: KindIVT, IVT: &IVTSpec{
			Synth: SynthSpec{NLon: 8, NLat: 6, NLev: 3, Steps: 2},
		}},
		KindTrain: {Kind: KindTrain, Train: &TrainSpec{
			Source: tinyVolume(), Threshold: 0.5, Steps: 3,
		}},
		KindTrainDist: {Kind: KindTrainDist, TrainDist: &TrainDistSpec{
			Source: tinyVolume(), Threshold: 0.5, Workers: 2, Rounds: 4, BatchPerRound: 4,
		}},
		KindSweep: {Kind: KindSweep, Sweep: &SweepSpec{
			Source: tinyVolume(), Threshold: 0.5,
			LRs: []float32{0.03}, Momentums: []float32{0.9}, Features: []int{4}, TrainSteps: []int{10},
		}},
		KindWorkflow: {Kind: KindWorkflow, Workflow: &WorkflowSpec{
			Name: "wf", Steps: []WorkflowStep{{Name: "a", DurationMS: 5}},
		}},
		KindPipeline: {Kind: KindPipeline, Pipeline: &PipelineSpec{
			Synth: SynthSpec{NLon: 8, NLat: 6, NLev: 3, Steps: 6}, SlabSteps: 3, Threshold: 1,
		}},
	}
}

// TestNetConfigScratchBudget requires the combined fov x features x
// flood_batch budget to hold even when every individual knob is within its
// own cap — a request at all three extremes would otherwise demand
// hundreds of GB of batched flood scratch.
func TestNetConfigScratchBudget(t *testing.T) {
	mk := func(nc *NetConfig) *JobRequest {
		return &JobRequest{Kind: KindSegment, Segment: &SegmentSpec{
			Source: tinyVolume(), Seeds: [][3]int{{1, 1, 1}}, MaxSteps: 1, Net: nc,
		}}
	}
	extreme := &NetConfig{FOV: [3]int{65, 65, 65}, Features: 256, FloodBatch: 256}
	err := mk(extreme).Validate()
	if !errors.Is(err, ErrInvalid) || !strings.Contains(err.Error(), "batched scratch") {
		t.Fatalf("all-extremes net config passed validation: %v", err)
	}
	// Each extreme alone (others defaulted) stays within the budget.
	for _, nc := range []*NetConfig{
		{FOV: [3]int{65, 65, 65}},
		{Features: 256},
		{FloodBatch: 256},
	} {
		if err := mk(nc).Validate(); err != nil {
			t.Fatalf("single-extreme net config %+v rejected: %v", nc, err)
		}
	}
}

// TestPipelineSpecRejections covers the streaming pipeline's validation.
func TestPipelineSpecRejections(t *testing.T) {
	mk := func(mut func(*PipelineSpec)) *JobRequest {
		spec := &PipelineSpec{
			Synth: SynthSpec{NLon: 8, NLat: 6, NLev: 3, Steps: 6}, SlabSteps: 2, Threshold: 1,
		}
		mut(spec)
		return &JobRequest{Kind: KindPipeline, Pipeline: spec}
	}
	cases := []struct {
		name string
		req  *JobRequest
		want string
	}{
		{"zero threshold", mk(func(s *PipelineSpec) { s.Threshold = 0 }), "threshold"},
		{"negative slab", mk(func(s *PipelineSpec) { s.SlabSteps = -1 }), "slab_steps"},
		{"bad synth", mk(func(s *PipelineSpec) { s.Synth.NLev = 1 }), "nlev"},
		{"bad connectivity", mk(func(s *PipelineSpec) { s.Connectivity = 18 }), "connectivity"},
		{"negative min voxels", mk(func(s *PipelineSpec) { s.MinVoxels = -1 }), "min_voxels"},
		{"partial stride", mk(func(s *PipelineSpec) { s.SeedStride = [3]int{1, 0, 2} }), "seed_stride"},
		{"oversized buffer", mk(func(s *PipelineSpec) { s.Buffer = maxStreamBuffer + 1 }), "buffer"},
		{"bad net batch", mk(func(s *PipelineSpec) { s.Net = &NetConfig{FloodBatch: -1} }), "flood_batch"},
	}
	for _, c := range cases {
		err := c.req.Validate()
		if !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: err = %v, want ErrInvalid", c.name, err)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %q, want substring %q", c.name, err, c.want)
		}
	}
}

func TestValidRequestsPass(t *testing.T) {
	for kind, req := range validRequests() {
		if err := req.Validate(); err != nil {
			t.Errorf("kind %s: unexpected validation error: %v", kind, err)
		}
	}
}

func TestVersionChecked(t *testing.T) {
	req := validRequests()[KindLabel]
	req.APIVersion = Version
	if err := req.Validate(); err != nil {
		t.Fatalf("explicit current version rejected: %v", err)
	}
	req.APIVersion = "chased/v999"
	if err := req.Validate(); !errors.Is(err, ErrInvalid) {
		t.Fatalf("bad version: err = %v, want ErrInvalid", err)
	}
}

func TestEnvelopeRejections(t *testing.T) {
	cases := []struct {
		name string
		req  *JobRequest
		want string
	}{
		{"missing kind", &JobRequest{}, "missing kind"},
		{"unknown kind", &JobRequest{Kind: "resample"}, "unknown kind"},
		{"missing spec", &JobRequest{Kind: KindSegment}, "needs a segment spec"},
		{"mismatched spec", &JobRequest{Kind: KindSegment, Label: &LabelSpec{Source: tinyVolume(), Threshold: 1}}, "needs a segment spec"},
		{"two specs", &JobRequest{Kind: KindLabel,
			Label: &LabelSpec{Source: tinyVolume(), Threshold: 1},
			IVT:   &IVTSpec{Synth: SynthSpec{NLon: 4, NLat: 4, NLev: 2, Steps: 1}}}, "exactly the one matching"},
	}
	for _, c := range cases {
		err := c.req.Validate()
		if !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: err = %v, want ErrInvalid", c.name, err)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %q, want substring %q", c.name, err, c.want)
		}
	}
}

func TestVolumeSourceRejections(t *testing.T) {
	mk := func(src VolumeSource) *JobRequest {
		return &JobRequest{Kind: KindLabel, Label: &LabelSpec{Source: src, Threshold: 0.5}}
	}
	cases := []struct {
		name string
		src  VolumeSource
	}{
		{"no dims no synth", VolumeSource{}},
		{"negative dim", VolumeSource{D: -1, H: 2, W: 2, Data: make([]float32, 8)}},
		{"data length mismatch", VolumeSource{D: 2, H: 2, W: 2, Data: make([]float32, 7)}},
		{"synth plus inline", VolumeSource{D: 2, H: 2, W: 2, Data: make([]float32, 8),
			Synth: &SynthSpec{NLon: 4, NLat: 4, NLev: 2, Steps: 1}}},
		{"synth single level", VolumeSource{Synth: &SynthSpec{NLon: 4, NLat: 4, NLev: 1, Steps: 1}}},
		{"synth zero steps", VolumeSource{Synth: &SynthSpec{NLon: 4, NLat: 4, NLev: 2, Steps: 0}}},
		{"synth oversized", VolumeSource{Synth: &SynthSpec{NLon: 1 << 12, NLat: 1 << 12, NLev: 2, Steps: 1 << 8}}},
	}
	for _, c := range cases {
		if err := mk(c.src).Validate(); !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: err = %v, want ErrInvalid", c.name, err)
		}
	}
}

// TestVolumeLimitOverflowProof: dimension products that wrap past int64
// must not sneak under the voxel cap — the memory bound is the point of
// the limit.
func TestVolumeLimitOverflowProof(t *testing.T) {
	synth := &JobRequest{Kind: KindIVT, IVT: &IVTSpec{
		Synth: SynthSpec{NLon: 131072, NLat: 65536, NLev: 2, Steps: 2147483648},
	}}
	if err := synth.Validate(); !errors.Is(err, ErrInvalid) {
		t.Fatalf("overflowing synth volume: err = %v, want ErrInvalid", err)
	}
	inline := &JobRequest{Kind: KindLabel, Label: &LabelSpec{
		Source:    VolumeSource{D: 1 << 21, H: 1 << 21, W: 1 << 22}, // product wraps to 0 == len(nil)
		Threshold: 1,
	}}
	if err := inline.Validate(); !errors.Is(err, ErrInvalid) {
		t.Fatalf("overflowing inline volume: err = %v, want ErrInvalid", err)
	}
	wf := &JobRequest{Kind: KindWorkflow, Workflow: &WorkflowSpec{
		Steps: []WorkflowStep{{Name: "a", DurationMS: 1e16}}, // would overflow time.Duration
	}}
	if err := wf.Validate(); !errors.Is(err, ErrInvalid) {
		t.Fatalf("overflowing step duration: err = %v, want ErrInvalid", err)
	}
}

func TestSegmentSpecRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*SegmentSpec)
	}{
		{"even fov", func(s *SegmentSpec) { s.Net = &NetConfig{FOV: [3]int{4, 9, 9}} }},
		{"negative train steps", func(s *SegmentSpec) { s.TrainSteps = -1 }},
		{"train without threshold", func(s *SegmentSpec) { s.TrainSteps = 5; s.Threshold = 0 }},
		{"grid seeding without threshold", func(s *SegmentSpec) { s.Seeds = nil; s.Threshold = 0 }},
		{"negative max steps", func(s *SegmentSpec) { s.MaxSteps = -2 }},
		{"negative stride", func(s *SegmentSpec) { s.SeedStride = [3]int{-1, 0, 0} }},
		{"move prob out of range", func(s *SegmentSpec) { s.Net = &NetConfig{MoveProb: 1.5} }},
	}
	for _, c := range cases {
		req := validRequests()[KindSegment]
		c.mut(req.Segment)
		if err := req.Validate(); !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: err = %v, want ErrInvalid", c.name, err)
		}
	}
}

func TestLabelTrainSpecRejections(t *testing.T) {
	label := validRequests()[KindLabel]
	label.Label.Connectivity = 18
	if err := label.Validate(); !errors.Is(err, ErrInvalid) {
		t.Errorf("connectivity 18: err = %v, want ErrInvalid", err)
	}
	label = validRequests()[KindLabel]
	label.Label.Threshold = 0
	if err := label.Validate(); !errors.Is(err, ErrInvalid) {
		t.Errorf("label threshold 0: err = %v, want ErrInvalid", err)
	}

	train := validRequests()[KindTrain]
	train.Train.Steps = 0
	if err := train.Validate(); !errors.Is(err, ErrInvalid) {
		t.Errorf("train steps 0: err = %v, want ErrInvalid", err)
	}
	train = validRequests()[KindTrain]
	train.Train.Momentum = 1
	if err := train.Validate(); !errors.Is(err, ErrInvalid) {
		t.Errorf("momentum 1: err = %v, want ErrInvalid", err)
	}
}

func TestWorkflowSpecRejections(t *testing.T) {
	cases := []struct {
		name string
		spec WorkflowSpec
	}{
		{"no steps", WorkflowSpec{Name: "w"}},
		{"unnamed step", WorkflowSpec{Steps: []WorkflowStep{{DurationMS: 1}}}},
		{"duplicate step", WorkflowSpec{Steps: []WorkflowStep{{Name: "a"}, {Name: "a"}}}},
		{"unknown dep", WorkflowSpec{Steps: []WorkflowStep{{Name: "a", DependsOn: []string{"ghost"}}}}},
		{"negative duration", WorkflowSpec{Steps: []WorkflowStep{{Name: "a", DurationMS: -3}}}},
		{"two-step cycle", WorkflowSpec{Steps: []WorkflowStep{
			{Name: "a", DependsOn: []string{"b"}}, {Name: "b", DependsOn: []string{"a"}}}}},
		{"self cycle", WorkflowSpec{Steps: []WorkflowStep{{Name: "a", DependsOn: []string{"a"}}}}},
		{"duration sum overflow", WorkflowSpec{Steps: []WorkflowStep{
			{Name: "a", DurationMS: 1 << 40}, {Name: "b", DurationMS: 1 << 40}}}},
	}
	for _, c := range cases {
		req := &JobRequest{Kind: KindWorkflow, Workflow: &c.spec}
		if err := req.Validate(); !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: err = %v, want ErrInvalid", c.name, err)
		}
	}
}

// TestJSONRoundTrip pins the wire shape: a request survives
// marshal/unmarshal and still validates.
func TestJSONRoundTrip(t *testing.T) {
	for kind, req := range validRequests() {
		raw, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("kind %s: marshal: %v", kind, err)
		}
		var back JobRequest
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatalf("kind %s: unmarshal: %v", kind, err)
		}
		if back.Kind != kind {
			t.Fatalf("kind %s: round-trip kind = %s", kind, back.Kind)
		}
		if err := back.Validate(); err != nil {
			t.Fatalf("kind %s: round-tripped request invalid: %v", kind, err)
		}
	}
}

func TestStateTerminal(t *testing.T) {
	for st, want := range map[State]bool{
		StateQueued: false, StateRunning: false,
		StateSucceeded: true, StateFailed: true, StateCancelled: true,
	} {
		if st.Terminal() != want {
			t.Errorf("%s.Terminal() = %v, want %v", st, !want, want)
		}
	}
}

func TestValidRef(t *testing.T) {
	good := strings.Repeat("0123456789abcdef", 4)
	if !ValidRef(good) {
		t.Fatalf("ValidRef(%q) = false", good)
	}
	for _, bad := range []string{"", "abc", good[:63], good + "0", "G" + good[1:], strings.ToUpper(good)} {
		if ValidRef(bad) {
			t.Errorf("ValidRef(%q) = true", bad)
		}
	}
}

func TestVolumeSourceRefValidation(t *testing.T) {
	ref := strings.Repeat("ab", 32)
	ok := JobRequest{Kind: KindLabel, Label: &LabelSpec{
		Source: VolumeSource{Ref: ref}, Threshold: 0.5,
	}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("ref source rejected: %v", err)
	}
	cases := map[string]VolumeSource{
		"ref+dims":  {Ref: ref, D: 1, H: 1, W: 1},
		"ref+data":  {Ref: ref, Data: []float32{1}},
		"ref+synth": {Ref: ref, Synth: &SynthSpec{NLon: 4, NLat: 4, NLev: 2, Steps: 1}},
		"short ref": {Ref: "abc123"},
		"upper ref": {Ref: strings.ToUpper(ref)},
	}
	for name, src := range cases {
		req := JobRequest{Kind: KindLabel, Label: &LabelSpec{Source: src, Threshold: 0.5}}
		if err := req.Validate(); !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: err = %v, want ErrInvalid", name, err)
		}
	}
}

func TestResultModeValidation(t *testing.T) {
	base := func(mode ResultMode) JobRequest {
		return JobRequest{
			Kind:       KindIVT,
			ResultMode: mode,
			IVT:        &IVTSpec{Synth: SynthSpec{NLon: 8, NLat: 8, NLev: 3, Steps: 2}},
		}
	}
	for _, mode := range []ResultMode{"", ResultModeInline, ResultModeRef} {
		r := base(mode)
		if err := r.Validate(); err != nil {
			t.Errorf("result_mode %q rejected: %v", mode, err)
		}
	}
	r := base("zip")
	if err := r.Validate(); !errors.Is(err, ErrInvalid) {
		t.Errorf("result_mode zip: err = %v, want ErrInvalid", err)
	}
}

func TestNetConfigPrecisionValidation(t *testing.T) {
	mk := func(p string) *JobRequest {
		return &JobRequest{Kind: KindSegment, Segment: &SegmentSpec{
			Source: tinyVolume(), Seeds: [][3]int{{1, 1, 1}}, MaxSteps: 1,
			Net: &NetConfig{Precision: p},
		}}
	}
	for _, p := range []string{"", "f32", "int8"} {
		if err := mk(p).Validate(); err != nil {
			t.Errorf("precision %q rejected: %v", p, err)
		}
	}
	for _, p := range []string{"fp16", "INT8", "bf16"} {
		err := mk(p).Validate()
		if !errors.Is(err, ErrInvalid) || !strings.Contains(err.Error(), "precision") {
			t.Errorf("precision %q: err = %v, want ErrInvalid mentioning precision", p, err)
		}
	}
}
