// Package api defines the versioned, typed Job API served by the chased
// gateway (cmd/chased). Every analysis the paper's ecosystem runs — FFN
// segmentation, CONNECT labelling, MERRA IVT derivation, FFN training, and
// measured PPoDS workflows — is expressed as a JobRequest: a JSON envelope
// carrying exactly one kind-specific spec. The package is pure schema: it
// imports no compute kernels, so clients (and the gateway's HTTP layer) can
// depend on it without pulling in the simulation stack. Validation is
// strict and happens at submit time; anything that passes Validate is safe
// to hand to internal/service for execution.
package api

import (
	"encoding/json"
	"errors"
	"fmt"
)

// Version is the API version accepted by this gateway generation. An empty
// APIVersion on a request means "current".
const Version = "chased/v1"

// Kind names a job type the service can execute.
type Kind string

// The built-in job kinds.
const (
	// KindSegment runs FFN flood-fill segmentation over a volume.
	KindSegment Kind = "segment"
	// KindLabel runs CONNECT connected-object labelling over a volume.
	KindLabel Kind = "label"
	// KindIVT derives the Integrated Water Vapor Transport volume from the
	// synthetic MERRA-2 generator.
	KindIVT Kind = "ivt"
	// KindTrain runs FFN SGD training on a labelled volume.
	KindTrain Kind = "train"
	// KindTrainDist runs synchronous data-parallel FFN training: N workers
	// compute gradients on shards of a global per-round batch, ring
	// all-reduce averages them, and periodic checkpoints land in the dataset
	// store as content-addressed refs a later job can resume from.
	KindTrainDist Kind = "train_dist"
	// KindSweep fans train jobs out over a hyperparameter grid through the
	// admission-controlled queue and returns a validation leaderboard.
	KindSweep Kind = "sweep"
	// KindWorkflow executes a measured virtual-time step DAG (PPoDS).
	KindWorkflow Kind = "workflow"
	// KindPipeline streams a multi-timestep volume through the full
	// IVT -> segment -> label analysis in overlapped time slabs.
	KindPipeline Kind = "pipeline"
)

// Kinds lists the built-in job kinds in a fixed order.
func Kinds() []Kind {
	return []Kind{KindSegment, KindLabel, KindIVT, KindTrain, KindTrainDist, KindSweep, KindWorkflow, KindPipeline}
}

// State is a job's lifecycle state.
type State string

// Job states. Queued -> Running -> one of the terminal states.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateSucceeded State = "succeeded"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateSucceeded || s == StateFailed || s == StateCancelled
}

// ErrInvalid is wrapped by every validation failure, so callers can map any
// schema problem to a 400 with errors.Is.
var ErrInvalid = errors.New("api: invalid job request")

func invalidf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrInvalid, fmt.Sprintf(format, args...))
}

// maxVoxels bounds inline and synthetic volumes so a single request cannot
// ask the gateway to allocate arbitrary memory (64M voxels = 256 MB f32).
const maxVoxels = 64 << 20

// maxTrainSteps bounds optimizer step counts per job.
const maxTrainSteps = 1 << 20

// maxStepMS bounds one workflow step's virtual duration (~35 virtual
// years) so the millisecond-to-Duration conversion can never overflow.
const maxStepMS = 1 << 40

// volumeVoxels returns a*b*c when all three factors are positive and the
// product stays within maxVoxels, checking via division so the
// multiplication itself can never overflow past the cap.
func volumeVoxels(a, b, c int) (int, bool) {
	if a <= 0 || b <= 0 || c <= 0 {
		return 0, false
	}
	if a > maxVoxels/b {
		return 0, false
	}
	ab := a * b
	if ab > maxVoxels/c {
		return 0, false
	}
	return ab * c, true
}

// ResultMode selects how a job returns its bulk payloads (masks, derived
// volumes): inline in the result JSON, or offloaded to the content-addressed
// dataset store with only the ref in the result.
type ResultMode string

// The result modes. Empty means ResultModeInline.
const (
	ResultModeInline ResultMode = "inline"
	ResultModeRef    ResultMode = "ref"
)

// JobRequest is the submit envelope: a kind plus exactly one matching spec.
type JobRequest struct {
	// APIVersion must be empty or equal to Version.
	APIVersion string `json:"api_version,omitempty"`
	Kind       Kind   `json:"kind"`
	// Name is an optional human label echoed in status listings.
	Name string `json:"name,omitempty"`
	// ResultMode: "ref" offloads bulk result payloads (segment masks, the
	// derived IVT volume, per-slab pipeline masks) to the dataset store and
	// returns content-addressed refs; "" or "inline" embeds them in the
	// result JSON (masks 1-bit packed).
	ResultMode ResultMode `json:"result_mode,omitempty"`
	// Placement optionally constrains where a cluster-mode deployment may
	// run the job. Single-node runners ignore it.
	Placement *PlacementSpec `json:"placement,omitempty"`

	Segment   *SegmentSpec   `json:"segment,omitempty"`
	Label     *LabelSpec     `json:"label,omitempty"`
	IVT       *IVTSpec       `json:"ivt,omitempty"`
	Train     *TrainSpec     `json:"train,omitempty"`
	TrainDist *TrainDistSpec `json:"train_dist,omitempty"`
	Sweep     *SweepSpec     `json:"sweep,omitempty"`
	Workflow  *WorkflowSpec  `json:"workflow,omitempty"`
	Pipeline  *PipelineSpec  `json:"pipeline,omitempty"`
}

// Validate checks the envelope and the kind's spec. It returns an error
// wrapping ErrInvalid on any schema problem.
func (r *JobRequest) Validate() error {
	if r == nil {
		return invalidf("nil request")
	}
	if r.APIVersion != "" && r.APIVersion != Version {
		return invalidf("unsupported api_version %q (want %q)", r.APIVersion, Version)
	}
	if r.ResultMode != "" && r.ResultMode != ResultModeInline && r.ResultMode != ResultModeRef {
		return invalidf("result_mode must be %q or %q, got %q", ResultModeInline, ResultModeRef, r.ResultMode)
	}
	if err := r.Placement.validate(); err != nil {
		return err
	}
	specs := 0
	for _, set := range []bool{r.Segment != nil, r.Label != nil, r.IVT != nil, r.Train != nil, r.TrainDist != nil, r.Sweep != nil, r.Workflow != nil, r.Pipeline != nil} {
		if set {
			specs++
		}
	}
	if specs > 1 {
		return invalidf("request carries %d specs, want exactly the one matching kind %q", specs, r.Kind)
	}
	switch r.Kind {
	case KindSegment:
		if r.Segment == nil {
			return invalidf("kind %q needs a segment spec", r.Kind)
		}
		return r.Segment.validate()
	case KindLabel:
		if r.Label == nil {
			return invalidf("kind %q needs a label spec", r.Kind)
		}
		return r.Label.validate()
	case KindIVT:
		if r.IVT == nil {
			return invalidf("kind %q needs an ivt spec", r.Kind)
		}
		return r.IVT.validate()
	case KindTrain:
		if r.Train == nil {
			return invalidf("kind %q needs a train spec", r.Kind)
		}
		return r.Train.validate()
	case KindTrainDist:
		if r.TrainDist == nil {
			return invalidf("kind %q needs a train_dist spec", r.Kind)
		}
		return r.TrainDist.validate()
	case KindSweep:
		if r.Sweep == nil {
			return invalidf("kind %q needs a sweep spec", r.Kind)
		}
		return r.Sweep.validate()
	case KindWorkflow:
		if r.Workflow == nil {
			return invalidf("kind %q needs a workflow spec", r.Kind)
		}
		return r.Workflow.validate()
	case KindPipeline:
		if r.Pipeline == nil {
			return invalidf("kind %q needs a pipeline spec", r.Kind)
		}
		return r.Pipeline.validate()
	case "":
		return invalidf("missing kind")
	default:
		return invalidf("unknown kind %q", r.Kind)
	}
}

// Refs returns every dataset ref named by the request's specs, in a fixed
// order — the service existence-checks them at submit time so a job with a
// dangling ref fails fast at the gateway instead of minutes later on a
// worker.
func (r *JobRequest) Refs() []string {
	var out []string
	add := func(v *VolumeSource) {
		if v.Ref != "" {
			out = append(out, v.Ref)
		}
	}
	switch {
	case r.Segment != nil:
		add(&r.Segment.Source)
	case r.Label != nil:
		add(&r.Label.Source)
	case r.Train != nil:
		add(&r.Train.Source)
	case r.TrainDist != nil:
		add(&r.TrainDist.Source)
		if r.TrainDist.ResumeFrom != "" {
			out = append(out, r.TrainDist.ResumeFrom)
		}
	case r.Sweep != nil:
		add(&r.Sweep.Source)
	}
	return out
}

// PlacementSpec constrains scheduling in cluster mode. All fields are
// optional; an empty spec means "anywhere the data gravity points".
type PlacementSpec struct {
	// Node pins the job to one named node.
	Node string `json:"node,omitempty"`
	// Site restricts the job to nodes at one PRP site.
	Site string `json:"site,omitempty"`
	// Tolerations allow placement onto tainted nodes: key -> value
	// ("" tolerates any value of the key).
	Tolerations map[string]string `json:"tolerations,omitempty"`
}

func (p *PlacementSpec) validate() error {
	if p == nil {
		return nil
	}
	if len(p.Node) > 256 || len(p.Site) > 256 {
		return invalidf("placement: node/site names capped at 256 bytes")
	}
	if len(p.Tolerations) > 64 {
		return invalidf("placement: at most 64 tolerations, got %d", len(p.Tolerations))
	}
	for k, v := range p.Tolerations {
		if len(k) > 256 || len(v) > 256 {
			return invalidf("placement: toleration keys/values capped at 256 bytes")
		}
	}
	return nil
}

// SynthSpec asks the service to synthesize an IVT volume from the
// deterministic MERRA-2 generator: Steps time slices on an NLon x NLat grid
// integrated over NLev pressure levels, starting at generator step Start.
type SynthSpec struct {
	NLon  int    `json:"nlon"`
	NLat  int    `json:"nlat"`
	NLev  int    `json:"nlev"`
	Steps int    `json:"steps"`
	Start int    `json:"start,omitempty"`
	Seed  uint64 `json:"seed,omitempty"`
}

func (s *SynthSpec) validate(field string) error {
	if s.NLon <= 0 || s.NLat <= 0 {
		return invalidf("%s: grid dims must be positive, got %dx%d", field, s.NLon, s.NLat)
	}
	if s.NLev < 2 {
		return invalidf("%s: nlev must be >= 2 for the vertical integral, got %d", field, s.NLev)
	}
	if s.Steps <= 0 {
		return invalidf("%s: steps must be positive, got %d", field, s.Steps)
	}
	if s.Start < 0 {
		return invalidf("%s: start must be non-negative, got %d", field, s.Start)
	}
	if _, ok := volumeVoxels(s.NLon, s.NLat, s.Steps); !ok {
		return invalidf("%s: volume %dx%dx%d exceeds the %d-voxel limit", field, s.NLon, s.NLat, s.Steps, maxVoxels)
	}
	return nil
}

// ValidRef reports whether s has the shape of a dataset content address
// (64 lowercase hex chars — a SHA-256). The api package stays pure schema,
// so this mirrors dataset.ValidID rather than importing the store; a
// cross-package test pins the two against each other.
func ValidRef(s string) bool {
	if len(s) != 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// VolumeSource names the input volume of a job, in exactly one of three
// forms: a content-addressed dataset ref (the data plane's preferred form —
// upload once, submit many), inline row-major (D, H, W) float32 data, or a
// SynthSpec the service materializes.
type VolumeSource struct {
	// Ref is a dataset id previously uploaded via PUT /v1/datasets/{id}
	// (or produced by a prior job in ref result mode).
	Ref   string     `json:"ref,omitempty"`
	D     int        `json:"d,omitempty"`
	H     int        `json:"h,omitempty"`
	W     int        `json:"w,omitempty"`
	Data  []float32  `json:"data,omitempty"`
	Synth *SynthSpec `json:"synth,omitempty"`
}

func (v *VolumeSource) validate(field string) error {
	if v.Ref != "" {
		if v.Synth != nil || v.D != 0 || v.H != 0 || v.W != 0 || len(v.Data) != 0 {
			return invalidf("%s: ref is mutually exclusive with inline data and synth", field)
		}
		if !ValidRef(v.Ref) {
			return invalidf("%s: ref %q is not a 64-hex content address", field, v.Ref)
		}
		return nil
	}
	if v.Synth != nil {
		if v.D != 0 || v.H != 0 || v.W != 0 || len(v.Data) != 0 {
			return invalidf("%s: synth and inline data are mutually exclusive", field)
		}
		return v.Synth.validate(field + ".synth")
	}
	if v.D <= 0 || v.H <= 0 || v.W <= 0 {
		return invalidf("%s: dims must be positive, got %dx%dx%d", field, v.D, v.H, v.W)
	}
	voxels, ok := volumeVoxels(v.D, v.H, v.W)
	if !ok {
		return invalidf("%s: volume %dx%dx%d exceeds the %d-voxel limit", field, v.D, v.H, v.W, maxVoxels)
	}
	if len(v.Data) != voxels {
		return invalidf("%s: data length %d does not match dims %dx%dx%d=%d",
			field, len(v.Data), v.D, v.H, v.W, voxels)
	}
	return nil
}

// NetConfig overrides the default FFN geometry. Zero-valued fields keep the
// experiment-scale defaults.
type NetConfig struct {
	FOV         [3]int  `json:"fov,omitempty"`
	Features    int     `json:"features,omitempty"`
	Modules     int     `json:"modules,omitempty"`
	MoveStep    [3]int  `json:"move_step,omitempty"`
	MoveProb    float32 `json:"move_prob,omitempty"`
	SegmentProb float32 `json:"segment_prob,omitempty"`
	// FloodBatch is the flood-fill inference batch size (0 = kernel
	// default; 1 = per-FOV). Results are bit-exact at every batch size.
	FloodBatch int `json:"flood_batch,omitempty"`
	// Precision selects the inference arithmetic: "" or "f32" is the
	// reference float32 path; "int8" runs quantized inference (int8
	// weights, uint8 activations, int32 accumulation). int8 masks are
	// bit-identical at every batch size and worker count but differ from
	// f32 within documented error bounds. Training always runs f32.
	Precision string `json:"precision,omitempty"`
}

// Network geometry caps: a request cannot ask for a network whose scratch
// buffers dwarf the volume cap (maxFOV^3 voxels x maxFeatures channels is
// ~70 MB f32 per activation tensor at the extremes).
const (
	maxFOV        = 65
	maxFeatures   = 256
	maxModules    = 16
	maxFloodBatch = 256
	// maxScratchElems bounds one batched-scratch activation tensor
	// (FloodBatch x Features x FOV voxels): 64M float32 = 256 MB, the
	// same ceiling maxVoxels puts on request volumes.
	maxScratchElems = 64 << 20
)

func (n *NetConfig) validate(field string) error {
	if n == nil {
		return nil
	}
	if n.FOV != [3]int{} {
		for _, d := range n.FOV {
			if d <= 0 || d%2 == 0 || d > maxFOV {
				return invalidf("%s: fov dims must be positive odd <= %d, got %v", field, maxFOV, n.FOV)
			}
		}
	}
	if n.Features < 0 || n.Features > maxFeatures {
		return invalidf("%s: features must be in [0,%d]", field, maxFeatures)
	}
	if n.Modules < 0 || n.Modules > maxModules {
		return invalidf("%s: modules must be in [0,%d]", field, maxModules)
	}
	for _, d := range n.MoveStep {
		if d < 0 || d > maxFOV {
			return invalidf("%s: move_step must be in [0,%d], got %v", field, maxFOV, n.MoveStep)
		}
	}
	if n.MoveProb < 0 || n.MoveProb >= 1 || n.SegmentProb < 0 || n.SegmentProb >= 1 {
		return invalidf("%s: probabilities must be in [0,1)", field)
	}
	if n.FloodBatch < 0 || n.FloodBatch > maxFloodBatch {
		return invalidf("%s: flood_batch must be in [0,%d]", field, maxFloodBatch)
	}
	switch n.Precision {
	case "", "f32", "int8":
	default:
		return invalidf("%s: precision must be \"f32\" or \"int8\", got %q", field, n.Precision)
	}
	// Combined batched-scratch budget: the flood scratch holds a few
	// (FloodBatch, Features, D, H, W) activation tensors, so the three
	// individually-capped knobs must also be bounded together — otherwise
	// a request at every individual extreme could demand hundreds of GB.
	// Zero-valued knobs assume the kernel defaults; a service-level test
	// pins these literals against ffn.DefaultConfig so they cannot drift.
	fov, feat, batch := n.FOV, n.Features, n.FloodBatch
	if fov == [3]int{} {
		fov = [3]int{5, 9, 9} // ffn.DefaultConfig().FOV
	}
	if feat == 0 {
		feat = 8 // ffn.DefaultConfig().Features
	}
	if batch == 0 {
		batch = 8 // ffn.DefaultFloodBatch
	}
	// Division-based like volumeVoxels, so the product can never overflow:
	// fovVol <= maxFOV^3 and feat*batch <= maxFeatures*maxFloodBatch both
	// fit comfortably even in 32-bit int.
	fovVol := fov[0] * fov[1] * fov[2]
	if fovVol > maxScratchElems/(feat*batch) {
		return invalidf("%s: fov x features x flood_batch implies a batched scratch over the %d-element limit",
			field, maxScratchElems)
	}
	return nil
}

// SegmentSpec runs FFN flood-fill segmentation. When TrainSteps > 0 the
// network is first trained on the source volume thresholded at Threshold
// (the self-supervised setup of the case study); when Seeds is empty, seeds
// come from a lattice of points whose raw value exceeds Threshold.
type SegmentSpec struct {
	Source VolumeSource `json:"source"`
	// Net overrides the default network geometry; NetSeed seeds the weights.
	Net     *NetConfig `json:"net,omitempty"`
	NetSeed uint64     `json:"net_seed,omitempty"`
	// TrainSteps > 0 pretrains on the thresholded source before segmenting.
	TrainSteps int `json:"train_steps,omitempty"`
	// Threshold binarizes the raw field for pretraining labels and grid
	// seeding. Required (> 0) when TrainSteps > 0 or Seeds is empty.
	Threshold float32 `json:"threshold,omitempty"`
	// Seeds are explicit (z, y, x) flood origins; empty means grid seeding.
	Seeds [][3]int `json:"seeds,omitempty"`
	// SeedStride is the grid-seeding lattice stride (defaults to the FOV).
	SeedStride [3]int `json:"seed_stride,omitempty"`
	// MaxSteps bounds network applications (0 = unbounded).
	MaxSteps int `json:"max_steps,omitempty"`
	// ReturnMask includes the full binary mask in the result: 1-bit packed
	// inline (mask_bits), or as a dataset ref (mask_ref) when the job's
	// result_mode is "ref".
	ReturnMask bool `json:"return_mask,omitempty"`
}

func (s *SegmentSpec) validate() error {
	if err := s.Source.validate("segment.source"); err != nil {
		return err
	}
	if err := s.Net.validate("segment.net"); err != nil {
		return err
	}
	if s.TrainSteps < 0 || s.TrainSteps > maxTrainSteps {
		return invalidf("segment.train_steps must be in [0,%d], got %d", maxTrainSteps, s.TrainSteps)
	}
	if s.MaxSteps < 0 {
		return invalidf("segment.max_steps must be non-negative, got %d", s.MaxSteps)
	}
	// The stride is either fully defaulted (all zero -> the handler uses
	// the FOV) or fully specified with positive components — a zero
	// component would make the seeding lattice never advance.
	if s.SeedStride != [3]int{} {
		for _, d := range s.SeedStride {
			if d <= 0 {
				return invalidf("segment.seed_stride components must all be positive (or all zero for the default), got %v", s.SeedStride)
			}
		}
	}
	if s.Threshold <= 0 && (s.TrainSteps > 0 || len(s.Seeds) == 0) {
		return invalidf("segment.threshold must be > 0 when pretraining or grid-seeding")
	}
	return nil
}

// LabelSpec runs CONNECT labelling on the source thresholded at Threshold.
type LabelSpec struct {
	Source    VolumeSource `json:"source"`
	Threshold float32      `json:"threshold"`
	// Connectivity is 6 or 26 (0 defaults to 26, the CONNECT default).
	Connectivity int `json:"connectivity,omitempty"`
	// MinVoxels prunes objects below the size threshold.
	MinVoxels int `json:"min_voxels,omitempty"`
	// MaxObjects caps the per-object list in the result (0 defaults to 20).
	MaxObjects int `json:"max_objects,omitempty"`
}

func (s *LabelSpec) validate() error {
	if err := s.Source.validate("label.source"); err != nil {
		return err
	}
	if s.Threshold <= 0 {
		return invalidf("label.threshold must be > 0")
	}
	if s.Connectivity != 0 && s.Connectivity != 6 && s.Connectivity != 26 {
		return invalidf("label.connectivity must be 6 or 26, got %d", s.Connectivity)
	}
	if s.MinVoxels < 0 || s.MaxObjects < 0 {
		return invalidf("label.min_voxels/max_objects must be non-negative")
	}
	return nil
}

// IVTSpec derives the IVT volume for a synthetic atmosphere. A positive
// Threshold additionally reports the fraction of voxels above it (the
// binary AR coverage of the case study).
type IVTSpec struct {
	Synth     SynthSpec `json:"synth"`
	Threshold float32   `json:"threshold,omitempty"`
}

func (s *IVTSpec) validate() error {
	if s.Threshold < 0 {
		return invalidf("ivt.threshold must be non-negative")
	}
	return s.Synth.validate("ivt.synth")
}

// TrainSpec runs FFN SGD training against the source volume, using the
// field thresholded at Threshold as the binary label mask.
type TrainSpec struct {
	Source    VolumeSource `json:"source"`
	Threshold float32      `json:"threshold"`
	Steps     int          `json:"steps"`
	// LR defaults to 0.05 and Momentum to 0.9 when zero.
	LR       float32 `json:"lr,omitempty"`
	Momentum float32 `json:"momentum,omitempty"`

	Net        *NetConfig `json:"net,omitempty"`
	NetSeed    uint64     `json:"net_seed,omitempty"`
	SampleSeed uint64     `json:"sample_seed,omitempty"`

	// HoldoutSteps reserves the trailing time slices of the source as a
	// held-out validation split: training sees only the leading D-holdout
	// slices, and the result carries precision/recall/F1/IoU of the trained
	// model's segmentation of the holdout — the evaluation unit sweep jobs
	// fan out. Zero trains on the full volume with no validation pass.
	HoldoutSteps int `json:"holdout_steps,omitempty"`
}

func (s *TrainSpec) validate() error {
	if err := s.Source.validate("train.source"); err != nil {
		return err
	}
	if err := s.Net.validate("train.net"); err != nil {
		return err
	}
	if s.Threshold <= 0 {
		return invalidf("train.threshold must be > 0")
	}
	if s.Steps <= 0 || s.Steps > maxTrainSteps {
		return invalidf("train.steps must be in [1,%d], got %d", maxTrainSteps, s.Steps)
	}
	if s.LR < 0 || s.Momentum < 0 || s.Momentum >= 1 {
		return invalidf("train.lr must be >= 0 and train.momentum in [0,1)")
	}
	if s.HoldoutSteps < 0 || s.HoldoutSteps > maxVoxels {
		return invalidf("train.holdout_steps must be non-negative, got %d", s.HoldoutSteps)
	}
	return nil
}

// Distributed-training and sweep caps.
const (
	// maxDistWorkers bounds the data-parallel width of one train_dist job.
	maxDistWorkers = 64
	// maxBatchPerRound bounds the global per-round example count.
	maxBatchPerRound = 4096
	// maxSweepCandidates bounds the hyperparameter grid one sweep expands.
	maxSweepCandidates = 64
)

// ElasticStep schedules a worker-count change at a round boundary: from
// Round onwards the job runs with Workers data-parallel workers. The
// sampling scheme is worker-count-invariant, so elastic changes never
// affect the loss sequence — only throughput and modeled comm traffic.
type ElasticStep struct {
	Round   int `json:"round"`
	Workers int `json:"workers"`
}

// TrainDistSpec runs synchronous data-parallel FFN training: every round
// draws one global batch (derived only from sample_seed and the round
// index), shards it across the workers, averages the gradients in global
// sample order (the deterministic ring all-reduce), and applies one SGD
// update — so the per-round loss sequence is bit-identical at any worker
// count. Labels are the source thresholded at Threshold, as in TrainSpec.
type TrainDistSpec struct {
	Source    VolumeSource `json:"source"`
	Threshold float32      `json:"threshold"`
	// Workers is the data-parallel width (1..64).
	Workers int `json:"workers"`
	// Rounds is the total number of synchronous update rounds the run should
	// reach — including rounds already completed by a resumed checkpoint.
	Rounds int `json:"rounds"`
	// BatchPerRound is the global FOV-example count per round, sharded
	// across the workers. Required unless resuming (the checkpoint pins it).
	BatchPerRound int `json:"batch_per_round,omitempty"`
	// LR defaults to 0.05 and Momentum to 0.9 when zero.
	LR       float32 `json:"lr,omitempty"`
	Momentum float32 `json:"momentum,omitempty"`

	Net        *NetConfig `json:"net,omitempty"`
	NetSeed    uint64     `json:"net_seed,omitempty"`
	SampleSeed uint64     `json:"sample_seed,omitempty"`

	// CheckpointEvery writes a checkpoint dataset ref every N rounds (0 =
	// only the final checkpoint).
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// ResumeFrom is a checkpoint dataset ref to continue from. The
	// checkpoint carries the model, optimizer state, sampling seed, batch
	// geometry, and completed rounds, so net/lr/momentum/batch_per_round/
	// seed fields must be zero when resuming — the checkpoint wins.
	ResumeFrom string `json:"resume_from,omitempty"`
	// Elastic schedules worker-count changes at round boundaries.
	Elastic []ElasticStep `json:"elastic,omitempty"`
}

func (s *TrainDistSpec) validate() error {
	if err := s.Source.validate("train_dist.source"); err != nil {
		return err
	}
	if s.Threshold <= 0 {
		return invalidf("train_dist.threshold must be > 0")
	}
	if s.Workers < 1 || s.Workers > maxDistWorkers {
		return invalidf("train_dist.workers must be in [1,%d], got %d", maxDistWorkers, s.Workers)
	}
	if s.Rounds < 1 || s.Rounds > maxTrainSteps {
		return invalidf("train_dist.rounds must be in [1,%d], got %d", maxTrainSteps, s.Rounds)
	}
	if s.LR < 0 || s.Momentum < 0 || s.Momentum >= 1 {
		return invalidf("train_dist.lr must be >= 0 and train_dist.momentum in [0,1)")
	}
	if s.CheckpointEvery < 0 {
		return invalidf("train_dist.checkpoint_every must be non-negative, got %d", s.CheckpointEvery)
	}
	if s.ResumeFrom != "" {
		if !ValidRef(s.ResumeFrom) {
			return invalidf("train_dist.resume_from %q is not a 64-hex content address", s.ResumeFrom)
		}
		if s.Net != nil || s.NetSeed != 0 || s.SampleSeed != 0 ||
			s.LR != 0 || s.Momentum != 0 || s.BatchPerRound != 0 {
			return invalidf("train_dist.resume_from carries the model, optimizer, and sampling state; net/net_seed/sample_seed/lr/momentum/batch_per_round must be zero")
		}
	} else {
		if err := s.Net.validate("train_dist.net"); err != nil {
			return err
		}
		if s.BatchPerRound < 1 || s.BatchPerRound > maxBatchPerRound {
			return invalidf("train_dist.batch_per_round must be in [1,%d], got %d", maxBatchPerRound, s.BatchPerRound)
		}
	}
	prev := 0
	for i, e := range s.Elastic {
		if e.Round < 1 || e.Round > maxTrainSteps {
			return invalidf("train_dist.elastic[%d].round must be in [1,%d], got %d", i, maxTrainSteps, e.Round)
		}
		if e.Round <= prev {
			return invalidf("train_dist.elastic rounds must be strictly increasing")
		}
		prev = e.Round
		if e.Workers < 1 || e.Workers > maxDistWorkers {
			return invalidf("train_dist.elastic[%d].workers must be in [1,%d], got %d", i, maxDistWorkers, e.Workers)
		}
	}
	return nil
}

// SweepSpec expands the cartesian hyperparameter grid (ffn.Grid) and fans
// one train job per candidate out through the service's admission-controlled
// fair queue, each training on the leading split of the source and validated
// on the trailing holdout. The result is a leaderboard ranked by F1.
type SweepSpec struct {
	Source    VolumeSource `json:"source"`
	Threshold float32      `json:"threshold"`
	// TrainFraction is the leading fraction of time slices candidates train
	// on (the rest is the held-out validation split). Zero defaults to 0.5.
	TrainFraction float64 `json:"train_fraction,omitempty"`

	// The grid axes. Modules may be empty (defaults to depth 2).
	LRs        []float32 `json:"lrs"`
	Momentums  []float32 `json:"momentums"`
	Features   []int     `json:"features"`
	Modules    []int     `json:"modules,omitempty"`
	TrainSteps []int     `json:"train_steps"`

	// Parallel bounds how many child jobs the sweep keeps in flight
	// (0 defaults to 2).
	Parallel int `json:"parallel,omitempty"`
	// EarlyStop enables median-based successive halving: every candidate
	// first runs at half its train steps, candidates whose F1 falls below
	// the rung median stop there, survivors run the full budget.
	EarlyStop bool `json:"early_stop,omitempty"`
	// Seed seeds candidate networks and samplers.
	Seed uint64 `json:"seed,omitempty"`
}

func (s *SweepSpec) validate() error {
	if err := s.Source.validate("sweep.source"); err != nil {
		return err
	}
	if s.Threshold <= 0 {
		return invalidf("sweep.threshold must be > 0")
	}
	if s.TrainFraction < 0 || s.TrainFraction >= 1 {
		return invalidf("sweep.train_fraction must be in [0,1), got %v", s.TrainFraction)
	}
	if len(s.LRs) == 0 || len(s.Momentums) == 0 || len(s.Features) == 0 || len(s.TrainSteps) == 0 {
		return invalidf("sweep grid needs at least one lr, momentum, features, and train_steps value")
	}
	for _, lr := range s.LRs {
		if lr < 0 {
			return invalidf("sweep.lrs must be >= 0")
		}
	}
	for _, m := range s.Momentums {
		if m < 0 || m >= 1 {
			return invalidf("sweep.momentums must be in [0,1)")
		}
	}
	for _, f := range s.Features {
		if f < 1 || f > maxFeatures {
			return invalidf("sweep.features must be in [1,%d]", maxFeatures)
		}
	}
	for _, m := range s.Modules {
		if m < 1 || m > maxModules {
			return invalidf("sweep.modules must be in [1,%d]", maxModules)
		}
	}
	for _, st := range s.TrainSteps {
		if st < 1 || st > maxTrainSteps {
			return invalidf("sweep.train_steps must be in [1,%d]", maxTrainSteps)
		}
	}
	mods := len(s.Modules)
	if mods == 0 {
		mods = 1
	}
	// Division-checked product against the candidate cap.
	size := len(s.LRs)
	for _, n := range []int{len(s.Momentums), len(s.Features), mods, len(s.TrainSteps)} {
		if size > maxSweepCandidates/n {
			return invalidf("sweep grid exceeds %d candidates", maxSweepCandidates)
		}
		size *= n
	}
	if s.Parallel < 0 || s.Parallel > maxDistWorkers {
		return invalidf("sweep.parallel must be in [0,%d], got %d", maxDistWorkers, s.Parallel)
	}
	return nil
}

// WorkflowStep declares one step of a measured virtual-time DAG.
type WorkflowStep struct {
	Name      string   `json:"name"`
	DependsOn []string `json:"depends_on,omitempty"`
	// DurationMS is the step's virtual duration in milliseconds.
	DurationMS int64 `json:"duration_ms"`
	// Measurements are recorded on the step (Table I rows).
	Measurements map[string]float64 `json:"measurements,omitempty"`
	// Fail, when non-empty, fails the step with this message (dependents
	// are skipped) — used to exercise failure propagation.
	Fail string `json:"fail,omitempty"`
}

// WorkflowSpec executes a PPoDS-style measured DAG in virtual time.
type WorkflowSpec struct {
	Name  string         `json:"name"`
	Steps []WorkflowStep `json:"steps"`
}

func (s *WorkflowSpec) validate() error {
	if len(s.Steps) == 0 {
		return invalidf("workflow needs at least one step")
	}
	if len(s.Steps) > 10000 {
		return invalidf("workflow exceeds the 10000-step limit")
	}
	names := make(map[string]bool, len(s.Steps))
	var totalMS int64
	for i, st := range s.Steps {
		if st.Name == "" {
			return invalidf("workflow.steps[%d] has no name", i)
		}
		if names[st.Name] {
			return invalidf("workflow has duplicate step %q", st.Name)
		}
		names[st.Name] = true
		if st.DurationMS < 0 || st.DurationMS > maxStepMS {
			return invalidf("workflow step %q duration must be in [0,%d] ms", st.Name, int64(maxStepMS))
		}
		// The summed bound keeps even a fully serial chain's virtual end
		// time far from overflowing time.Duration.
		totalMS += st.DurationMS
		if totalMS > maxStepMS {
			return invalidf("workflow durations sum past the %d ms limit", int64(maxStepMS))
		}
	}
	indeg := make(map[string]int, len(s.Steps))
	dependents := make(map[string][]string, len(s.Steps))
	for _, st := range s.Steps {
		for _, d := range st.DependsOn {
			if !names[d] {
				return invalidf("workflow step %q depends on unknown step %q", st.Name, d)
			}
			dependents[d] = append(dependents[d], st.Name)
			indeg[st.Name]++
		}
	}
	// Cycle check (Kahn's algorithm): anything that passes Validate must
	// be executable, and a cyclic DAG never can be.
	queue := make([]string, 0, len(s.Steps))
	for _, st := range s.Steps {
		if indeg[st.Name] == 0 {
			queue = append(queue, st.Name)
		}
	}
	seen := 0
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		seen++
		for _, next := range dependents[cur] {
			if indeg[next]--; indeg[next] == 0 {
				queue = append(queue, next)
			}
		}
	}
	if seen != len(s.Steps) {
		return invalidf("workflow has a dependency cycle")
	}
	return nil
}

// maxStreamBuffer bounds the pipeline's inter-stage slab buffering.
const maxStreamBuffer = 64

// PipelineSpec streams the full IVT -> segment -> label analysis over a
// multi-timestep synthetic volume in time slabs of SlabSteps steps each:
// while slab t is being segmented, slab t+1's IVT is derived and slab t-1's
// mask is labelled. Each slab is an independent analysis unit (its own
// normalization, seeding, flood, and labelling), so the result is identical
// whether the stages overlap or run sequentially — only wall-clock differs.
type PipelineSpec struct {
	Synth SynthSpec `json:"synth"`
	// SlabSteps is the number of time steps per slab (0, or more than
	// synth.steps, means one slab spanning the whole volume).
	SlabSteps int `json:"slab_steps,omitempty"`
	// Threshold binarizes each slab's raw IVT field for grid seeding.
	Threshold float32 `json:"threshold"`
	// Net overrides the segmentation network geometry; NetSeed seeds it.
	Net     *NetConfig `json:"net,omitempty"`
	NetSeed uint64     `json:"net_seed,omitempty"`
	// SeedStride is the grid-seeding lattice stride (defaults to the FOV).
	SeedStride [3]int `json:"seed_stride,omitempty"`
	// Connectivity is 6 or 26 (0 defaults to 26); MinVoxels prunes small
	// objects in the label stage.
	Connectivity int `json:"connectivity,omitempty"`
	MinVoxels    int `json:"min_voxels,omitempty"`
	// Sequential disables stage overlap — the baseline mode the overlapped
	// pipeline is benchmarked against. Results are identical.
	Sequential bool `json:"sequential,omitempty"`
	// Buffer bounds how many slabs may queue between adjacent stages
	// (<= 0 defaults to 1).
	Buffer int `json:"buffer,omitempty"`
}

func (s *PipelineSpec) validate() error {
	if err := s.Synth.validate("pipeline.synth"); err != nil {
		return err
	}
	if err := s.Net.validate("pipeline.net"); err != nil {
		return err
	}
	if s.SlabSteps < 0 {
		return invalidf("pipeline.slab_steps must be non-negative, got %d", s.SlabSteps)
	}
	if s.Threshold <= 0 {
		return invalidf("pipeline.threshold must be > 0")
	}
	if s.SeedStride != [3]int{} {
		for _, d := range s.SeedStride {
			if d <= 0 {
				return invalidf("pipeline.seed_stride components must all be positive (or all zero for the default), got %v", s.SeedStride)
			}
		}
	}
	if s.Connectivity != 0 && s.Connectivity != 6 && s.Connectivity != 26 {
		return invalidf("pipeline.connectivity must be 6 or 26, got %d", s.Connectivity)
	}
	if s.MinVoxels < 0 {
		return invalidf("pipeline.min_voxels must be non-negative")
	}
	if s.Buffer < 0 || s.Buffer > maxStreamBuffer {
		return invalidf("pipeline.buffer must be in [0,%d]", maxStreamBuffer)
	}
	return nil
}

// --- Status and result payloads --------------------------------------------

// JobStatus is the poll snapshot of a job. It is a flat value type — no
// slices or maps — so the in-process status-poll path copies it without
// allocating.
type JobStatus struct {
	ID    string `json:"id"`
	Kind  Kind   `json:"kind"`
	Name  string `json:"name,omitempty"`
	Owner string `json:"owner,omitempty"`
	State State  `json:"state"`
	// Done/Total/Stage are the kernel-reported progress (Total 0 = unknown).
	Done  int64  `json:"done"`
	Total int64  `json:"total"`
	Stage string `json:"stage,omitempty"`
	// Wall-clock transition times, UnixNano (0 = not reached).
	SubmittedAt int64 `json:"submitted_at"`
	StartedAt   int64 `json:"started_at,omitempty"`
	FinishedAt  int64 `json:"finished_at,omitempty"`
	// Error is set for failed and cancelled jobs.
	Error string `json:"error,omitempty"`
	// Placement is the cluster-mode scheduling decision; nil on single-node
	// deployments. The pointer keeps JobStatus a comparable value type: the
	// scheduler publishes a fresh immutable Placement on every (re)bind, so
	// status watchers see requeues as a status change.
	Placement *Placement `json:"placement,omitempty"`
}

// Locality classes for a placement decision, ordered best to worst.
const (
	LocalityReplicaLocal = "replica-local" // node hosts an up OSD replica of every input ref
	LocalitySameSite     = "same-site"     // all input refs have an up replica at the node's site
	LocalityRemote       = "remote"        // at least one input ref must cross the WAN
	LocalityAny          = "any"           // job has no dataset inputs; no gravity
)

// Placement reports where the cluster scheduler bound a job and why. It is a
// flat value type; JobStatus holds it by pointer.
type Placement struct {
	// Node and Site name the binding.
	Node string `json:"node"`
	Site string `json:"site"`
	// Locality is the data-gravity class of the decision (see Locality*).
	Locality string `json:"locality"`
	// Score is the scheduler's score for the chosen node (higher is better;
	// 0 is a free local hit).
	Score float64 `json:"score"`
	// TransferMS is the simulated time to stage the job's input refs onto
	// the node over the netsim fabric, in milliseconds.
	TransferMS float64 `json:"transfer_ms"`
	// EstJoules is the estimated board energy for the job on this node's
	// device model.
	EstJoules float64 `json:"est_joules,omitempty"`
	// Requeues counts how many times the job was drained off a lost node
	// and re-placed.
	Requeues int `json:"requeues,omitempty"`
}

// NodeStatus is one row of the cluster-mode node inventory (GET /v1/nodes
// and `chased nodes`). Alloc* mirror the node's committed resources including
// scheduler claims; BoundJobs counts jobs currently bound to the node's pool.
type NodeStatus struct {
	Name  string `json:"name"`
	Site  string `json:"site"`
	Ready bool   `json:"ready"`

	CPU         int   `json:"cpu"`
	MemoryBytes int64 `json:"memory_bytes"`
	GPUs        int   `json:"gpus"`

	AllocCPU         int   `json:"alloc_cpu"`
	AllocMemoryBytes int64 `json:"alloc_memory_bytes"`
	AllocGPUs        int   `json:"alloc_gpus"`

	BoundJobs int `json:"bound_jobs"`

	// OSD names the storage daemon co-located on this node, if any; OSDUp
	// reports whether it is serving.
	OSD   string `json:"osd,omitempty"`
	OSDUp bool   `json:"osd_up,omitempty"`
}

// SubmitResponse acknowledges a submitted job.
type SubmitResponse struct {
	ID    string `json:"id"`
	State State  `json:"state"`
}

// ErrorResponse is the JSON error body of every non-2xx gateway reply.
type ErrorResponse struct {
	Error string `json:"error"`
}

// SegmentResult reports a segmentation job. On cancellation the stats are
// partial (the flood stopped mid-way) and the mask covers what was flooded.
type SegmentResult struct {
	Steps       int `json:"steps"`
	Moves       int `json:"moves"`
	SeedsUsed   int `json:"seeds_used"`
	MaskVoxels  int `json:"mask_voxels"`
	VoxelsTotal int `json:"voxels_total"`
	// Pretraining summary, present when train_steps > 0.
	TrainSteps    int     `json:"train_steps,omitempty"`
	TrainLossHead float64 `json:"train_loss_head,omitempty"`
	TrainLossTail float64 `json:"train_loss_tail,omitempty"`
	// Mask payload, included only when return_mask was set. Inline mode
	// carries MaskBits, the 1-bit-per-voxel LSB-first packing of the (D, H,
	// W) row-major binary mask (dataset.PackBits — ~32x smaller than the
	// float array it replaced); ref mode carries MaskRef, a dataset id
	// fetchable via GET /v1/datasets/{id}.
	D        int    `json:"d,omitempty"`
	H        int    `json:"h,omitempty"`
	W        int    `json:"w,omitempty"`
	MaskBits []byte `json:"mask_bits,omitempty"`
	MaskRef  string `json:"mask_ref,omitempty"`
}

// ObjectSummary is one tracked object in a label result.
type ObjectSummary struct {
	ID          int `json:"id"`
	Voxels      int `json:"voxels"`
	Genesis     int `json:"genesis"`
	Termination int `json:"termination"`
	PeakArea    int `json:"peak_area"`
}

// LabelResult reports a CONNECT labelling job.
type LabelResult struct {
	Objects      int             `json:"objects"`
	TotalVoxels  int             `json:"total_voxels"`
	MeanDuration float64         `json:"mean_duration"`
	MaxDuration  int             `json:"max_duration"`
	MeanVoxels   float64         `json:"mean_voxels"`
	Top          []ObjectSummary `json:"top,omitempty"`
}

// IVTStep is one time slice's field summary.
type IVTStep struct {
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
}

// IVTResult reports an IVT derivation job.
type IVTResult struct {
	Steps   int       `json:"steps"`
	Mean    float64   `json:"mean"`
	Max     float64   `json:"max"`
	PerStep []IVTStep `json:"per_step,omitempty"`
	// Coverage is the fraction of voxels >= threshold (threshold > 0 only).
	Coverage float64 `json:"coverage,omitempty"`
	// VolumeRef is the derived (steps, nlat, nlon) IVT volume as a dataset
	// ref, present when the job's result_mode is "ref" — downstream segment
	// and label jobs can submit it by ref without the field ever leaving
	// the fabric.
	VolumeRef string `json:"volume_ref,omitempty"`
}

// TrainResult reports a training job. On cancellation Steps reflects the
// optimizer steps actually taken.
type TrainResult struct {
	Steps    int     `json:"steps"`
	LossHead float64 `json:"loss_head"`
	LossTail float64 `json:"loss_tail"`
	// Held-out validation metrics, present when holdout_steps > 0.
	HoldoutSteps int     `json:"holdout_steps,omitempty"`
	Precision    float64 `json:"precision,omitempty"`
	Recall       float64 `json:"recall,omitempty"`
	F1           float64 `json:"f1,omitempty"`
	IoU          float64 `json:"iou,omitempty"`
}

// CheckpointInfo names one checkpoint a train_dist job wrote.
type CheckpointInfo struct {
	// Round is the next round index the checkpoint resumes at.
	Round int `json:"round"`
	// Ref is the checkpoint's content-addressed dataset id.
	Ref string `json:"ref"`
}

// TrainDistResult reports a distributed training job.
type TrainDistResult struct {
	// Workers is the final data-parallel width (after elastic steps).
	Workers int `json:"workers"`
	// Rounds is the total completed rounds, including resumed history.
	Rounds int `json:"rounds"`
	// StartRound is the first round this job executed (non-zero when the
	// job resumed from a checkpoint); ResumedFrom echoes the checkpoint ref.
	StartRound  int    `json:"start_round,omitempty"`
	ResumedFrom string `json:"resumed_from,omitempty"`
	// Losses is the full per-round mean loss history (resumed history
	// included), bit-identical at any worker count.
	Losses   []float64 `json:"losses"`
	LossHead float64   `json:"loss_head"`
	LossTail float64   `json:"loss_tail"`
	// GradBytes is the per-worker-pair gradient payload; CommBytes the
	// modeled ring all-reduce traffic across the rounds this job executed.
	GradBytes float64 `json:"grad_bytes"`
	CommBytes float64 `json:"comm_bytes"`
	// CheckpointRef is the final checkpoint (always written); Checkpoints
	// lists every periodic checkpoint including the final one.
	CheckpointRef string           `json:"checkpoint_ref,omitempty"`
	Checkpoints   []CheckpointInfo `json:"checkpoints,omitempty"`
}

// SweepParams is one grid candidate (mirrors ffn.Hyperparams; the api
// package stays pure schema).
type SweepParams struct {
	LR         float32 `json:"lr"`
	Momentum   float32 `json:"momentum"`
	Features   int     `json:"features"`
	Modules    int     `json:"modules"`
	TrainSteps int     `json:"train_steps"`
}

// SweepEntry is one leaderboard row of a sweep result.
type SweepEntry struct {
	Params SweepParams `json:"params"`
	// JobID is the child train job that produced the metrics.
	JobID     string  `json:"job_id,omitempty"`
	TrainLoss float64 `json:"train_loss"`
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	F1        float64 `json:"f1"`
	IoU       float64 `json:"iou"`
	// EarlyStopped marks candidates halted at the half-budget rung.
	EarlyStopped bool `json:"early_stopped,omitempty"`
}

// Better reports whether e beats o on F1 (ties broken by IoU) — the
// leaderboard order.
func (e SweepEntry) Better(o SweepEntry) bool {
	if e.F1 != o.F1 {
		return e.F1 > o.F1
	}
	return e.IoU > o.IoU
}

// SweepResult reports a hyperparameter sweep: the full leaderboard sorted
// best-first and the winning candidate.
type SweepResult struct {
	Candidates   int          `json:"candidates"`
	EarlyStopped int          `json:"early_stopped,omitempty"`
	Leaderboard  []SweepEntry `json:"leaderboard"`
	Best         SweepEntry   `json:"best"`
}

// WorkflowStepResult is one step of a workflow report.
type WorkflowStepResult struct {
	Name         string             `json:"name"`
	Status       string             `json:"status"`
	DurationMS   int64              `json:"duration_ms"`
	Measurements map[string]float64 `json:"measurements,omitempty"`
}

// WorkflowResult reports a measured DAG run, including the rendered
// Table-I-style resource summary.
type WorkflowResult struct {
	Workflow string               `json:"workflow"`
	Steps    []WorkflowStepResult `json:"steps"`
	TotalMS  int64                `json:"total_ms"`
	Failed   bool                 `json:"failed"`
	Table    string               `json:"table,omitempty"`
}

// PipelineSlabResult summarizes one time slab's trip through the
// IVT -> segment -> label pipeline.
type PipelineSlabResult struct {
	Slab      int `json:"slab"`
	StartStep int `json:"start_step"`
	Steps     int `json:"steps"`
	// IVT stage.
	IVTMean float64 `json:"ivt_mean"`
	IVTMax  float64 `json:"ivt_max"`
	// Segment stage.
	SegSteps   int `json:"seg_steps"`
	SegMoves   int `json:"seg_moves"`
	SeedsUsed  int `json:"seeds_used"`
	MaskVoxels int `json:"mask_voxels"`
	// Label stage.
	Objects      int `json:"objects"`
	ObjectVoxels int `json:"object_voxels"`
	MaxDuration  int `json:"max_duration"`
	// MaskRef is the slab's segmentation mask as a dataset ref, retained
	// when the job's result_mode is "ref" (the pipeline's stages always
	// chain by ref internally; inline mode releases the intermediates).
	MaskRef string `json:"mask_ref,omitempty"`
}

// PipelineResult reports a streamed pipeline job. On cancellation the
// aggregates cover the slabs that completed all three stages.
type PipelineResult struct {
	Slabs      int  `json:"slabs"`
	SlabsDone  int  `json:"slabs_done"`
	Steps      int  `json:"steps"`
	Sequential bool `json:"sequential,omitempty"`
	// Step-weighted IVT field aggregates.
	IVTMean float64 `json:"ivt_mean"`
	IVTMax  float64 `json:"ivt_max"`
	// Summed segmentation statistics.
	SegSteps    int `json:"seg_steps"`
	SegMoves    int `json:"seg_moves"`
	SeedsUsed   int `json:"seeds_used"`
	MaskVoxels  int `json:"mask_voxels"`
	VoxelsTotal int `json:"voxels_total"`
	// Summed labelling statistics (objects are per-slab: a structure
	// spanning a slab boundary counts once per slab it appears in).
	Objects      int                  `json:"objects"`
	ObjectVoxels int                  `json:"object_voxels"`
	MaxDuration  int                  `json:"max_duration"`
	PerSlab      []PipelineSlabResult `json:"per_slab,omitempty"`
}

// ResultEnvelope wraps a terminal job's result payload.
type ResultEnvelope struct {
	ID     string          `json:"id"`
	Kind   Kind            `json:"kind"`
	State  State           `json:"state"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}
