package api

import (
	"errors"
	"strings"
	"testing"
)

// fakeRef is a syntactically valid 64-hex content address.
const fakeRef = "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef"

func TestTrainDistSpecRejections(t *testing.T) {
	mk := func(mut func(*TrainDistSpec)) *JobRequest {
		spec := &TrainDistSpec{
			Source: tinyVolume(), Threshold: 0.5, Workers: 2, Rounds: 4, BatchPerRound: 4,
		}
		mut(spec)
		return &JobRequest{Kind: KindTrainDist, TrainDist: spec}
	}
	resume := func(mut func(*TrainDistSpec)) *JobRequest {
		return mk(func(s *TrainDistSpec) {
			s.BatchPerRound = 0
			s.ResumeFrom = fakeRef
			mut(s)
		})
	}
	cases := []struct {
		name string
		req  *JobRequest
		want string
	}{
		{"zero threshold", mk(func(s *TrainDistSpec) { s.Threshold = 0 }), "threshold"},
		{"zero workers", mk(func(s *TrainDistSpec) { s.Workers = 0 }), "workers"},
		{"too many workers", mk(func(s *TrainDistSpec) { s.Workers = maxDistWorkers + 1 }), "workers"},
		{"zero rounds", mk(func(s *TrainDistSpec) { s.Rounds = 0 }), "rounds"},
		{"zero batch", mk(func(s *TrainDistSpec) { s.BatchPerRound = 0 }), "batch_per_round"},
		{"momentum one", mk(func(s *TrainDistSpec) { s.Momentum = 1 }), "momentum"},
		{"negative checkpoint cadence", mk(func(s *TrainDistSpec) { s.CheckpointEvery = -1 }), "checkpoint_every"},
		{"garbage resume ref", mk(func(s *TrainDistSpec) { s.BatchPerRound = 0; s.ResumeFrom = "ckpt-1" }), "resume_from"},
		{"resume with batch", resume(func(s *TrainDistSpec) { s.BatchPerRound = 4 }), "must be zero"},
		{"resume with net", resume(func(s *TrainDistSpec) { s.Net = &NetConfig{Features: 4} }), "must be zero"},
		{"resume with net seed", resume(func(s *TrainDistSpec) { s.NetSeed = 7 }), "must be zero"},
		{"resume with sample seed", resume(func(s *TrainDistSpec) { s.SampleSeed = 7 }), "must be zero"},
		{"resume with lr", resume(func(s *TrainDistSpec) { s.LR = 0.1 }), "must be zero"},
		{"elastic zero round", mk(func(s *TrainDistSpec) { s.Elastic = []ElasticStep{{Round: 0, Workers: 2}} }), "elastic"},
		{"elastic not increasing", mk(func(s *TrainDistSpec) {
			s.Elastic = []ElasticStep{{Round: 3, Workers: 2}, {Round: 3, Workers: 4}}
		}), "strictly increasing"},
		{"elastic zero workers", mk(func(s *TrainDistSpec) { s.Elastic = []ElasticStep{{Round: 2, Workers: 0}} }), "elastic"},
	}
	for _, c := range cases {
		err := c.req.Validate()
		if !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: err = %v, want ErrInvalid", c.name, err)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %q, want substring %q", c.name, err, c.want)
		}
	}
	// A well-formed resume spec passes, and only names the checkpoint.
	if err := resume(func(s *TrainDistSpec) {}).Validate(); err != nil {
		t.Fatalf("valid resume spec rejected: %v", err)
	}
	// Elastic schedules are accepted when strictly increasing.
	ok := mk(func(s *TrainDistSpec) {
		s.Elastic = []ElasticStep{{Round: 2, Workers: 4}, {Round: 3, Workers: 1}}
	})
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid elastic spec rejected: %v", err)
	}
}

func TestTrainDistRefsIncludeResume(t *testing.T) {
	req := &JobRequest{Kind: KindTrainDist, TrainDist: &TrainDistSpec{
		Source: tinyVolume(), Threshold: 0.5, Workers: 1, Rounds: 1, ResumeFrom: fakeRef,
	}}
	found := false
	for _, ref := range req.Refs() {
		if ref == fakeRef {
			found = true
		}
	}
	if !found {
		t.Fatalf("Refs() = %v does not include resume_from (the checkpoint must be pinned at submit)", req.Refs())
	}
}

func TestSweepSpecRejections(t *testing.T) {
	mk := func(mut func(*SweepSpec)) *JobRequest {
		spec := &SweepSpec{
			Source: tinyVolume(), Threshold: 0.5,
			LRs: []float32{0.03}, Momentums: []float32{0.9}, Features: []int{4}, TrainSteps: []int{10},
		}
		mut(spec)
		return &JobRequest{Kind: KindSweep, Sweep: spec}
	}
	cases := []struct {
		name string
		req  *JobRequest
		want string
	}{
		{"zero threshold", mk(func(s *SweepSpec) { s.Threshold = 0 }), "threshold"},
		{"train fraction one", mk(func(s *SweepSpec) { s.TrainFraction = 1 }), "train_fraction"},
		{"no lrs", mk(func(s *SweepSpec) { s.LRs = nil }), "at least one"},
		{"no momentums", mk(func(s *SweepSpec) { s.Momentums = nil }), "at least one"},
		{"no features", mk(func(s *SweepSpec) { s.Features = nil }), "at least one"},
		{"no train steps", mk(func(s *SweepSpec) { s.TrainSteps = nil }), "at least one"},
		{"negative lr", mk(func(s *SweepSpec) { s.LRs = []float32{-0.1} }), "lrs"},
		{"momentum one", mk(func(s *SweepSpec) { s.Momentums = []float32{1} }), "momentums"},
		{"zero features", mk(func(s *SweepSpec) { s.Features = []int{0} }), "features"},
		{"zero modules", mk(func(s *SweepSpec) { s.Modules = []int{0} }), "modules"},
		{"zero steps", mk(func(s *SweepSpec) { s.TrainSteps = []int{0} }), "train_steps"},
		{"negative parallel", mk(func(s *SweepSpec) { s.Parallel = -1 }), "parallel"},
		{"grid too large", mk(func(s *SweepSpec) {
			s.LRs = make([]float32, 9)
			s.Momentums = make([]float32, 9)
			for i := range s.LRs {
				s.LRs[i] = 0.01
			}
			// 9*9 = 81 > 64 candidates.
		}), "exceeds"},
	}
	for _, c := range cases {
		err := c.req.Validate()
		if !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: err = %v, want ErrInvalid", c.name, err)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %q, want substring %q", c.name, err, c.want)
		}
	}
	// The cap is on the product, not any one axis: 64 exactly passes.
	atCap := mk(func(s *SweepSpec) {
		s.LRs = make([]float32, 8)
		s.Momentums = make([]float32, 8)
		for i := range s.LRs {
			s.LRs[i] = 0.01
			s.Momentums[i] = float32(i) / 10
		}
	})
	if err := atCap.Validate(); err != nil {
		t.Fatalf("64-candidate grid rejected: %v", err)
	}
}
