module chaseci

go 1.24
