// Package chaseci's root benchmark suite regenerates every table and figure
// of the paper's evaluation (go test -bench=.). Each benchmark runs the
// relevant experiment in virtual time and reports the paper-comparable
// quantities via b.ReportMetric:
//
//	BenchmarkTable1Workflow     Table I  (per-step times at full scale)
//	BenchmarkFig1StoragePlacement  Fig 1 (distributed storage + healing)
//	BenchmarkFig3Download       Fig 3    (10-worker download orchestration)
//	BenchmarkFig4Network        Fig 4    (network usage during download)
//	BenchmarkFig5Training       Fig 5    (prep + training phases)
//	BenchmarkFig6Inference      Fig 6    (50-GPU inference)
//	BenchmarkAblation*          extensions from Section III-E
//	BenchmarkBaselineConnect    CONNECT-vs-FFN real-compute comparison
//
// EXPERIMENTS.md records paper-vs-measured for each.
package chaseci

import (
	"fmt"
	"testing"
	"time"

	"chaseci/internal/cluster"
	"chaseci/internal/connect"
	"chaseci/internal/core"
	"chaseci/internal/ffn"
	"chaseci/internal/gpusim"
	"chaseci/internal/merra"
	"chaseci/internal/parallel"
	"chaseci/internal/sim"
	"chaseci/internal/tensor"
)

// runPaperWorkflow executes the case study and returns the run.
func runPaperWorkflow(b *testing.B, granules int, subset bool) *core.ConnectRun {
	b.Helper()
	cfg := core.PaperConnectConfig()
	cfg.Subset = subset
	if granules > 0 {
		cfg.Archive = merra.MERRA2().Slice(granules)
	}
	eco := core.BuildNautilus(core.DefaultNautilus())
	run, err := eco.NewConnectWorkflow(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := run.Execute(); err != nil {
		b.Fatal(err)
	}
	return run
}

// BenchmarkTable1Workflow regenerates Table I: the full 4-step workflow at
// the paper's archive scale. Paper: 37m / 306m / 1133m / NA.
func BenchmarkTable1Workflow(b *testing.B) {
	var run *core.ConnectRun
	for i := 0; i < b.N; i++ {
		run = runPaperWorkflow(b, 0, true)
	}
	b.ReportMetric(run.StepDuration("1-download").Minutes(), "step1-vmin")
	b.ReportMetric(run.StepDuration("2-train").Minutes(), "step2-vmin")
	b.ReportMetric(run.StepDuration("3-inference").Minutes(), "step3-vmin")
	b.ReportMetric(run.BytesDownloaded.Value()/1e9, "downloaded-GB")
}

// BenchmarkFig1StoragePlacement regenerates Figure 1's claim: replicated
// distributed storage that heals. Reports re-replication virtual time after
// an OSD loss holding 1/13th of a 2 TB dataset.
func BenchmarkFig1StoragePlacement(b *testing.B) {
	var healVSec float64
	for i := 0; i < b.N; i++ {
		eco := core.BuildNautilus(core.DefaultNautilus())
		for j := 0; j < 500; j++ {
			eco.Storage.Put("bench", fmt.Sprintf("obj-%04d", j), 4e9, nil)
		}
		start := eco.Clock.Now()
		if _, err := eco.Storage.FailOSD("ucsd-osd-00"); err != nil {
			b.Fatal(err)
		}
		eco.Clock.RunWhile(func() bool { return eco.Storage.Recovering() })
		healVSec = (eco.Clock.Now() - start).Seconds()
		if !eco.Storage.HealthReport().OK() {
			b.Fatal("storage did not heal")
		}
	}
	b.ReportMetric(healVSec, "heal-vsec")
}

// BenchmarkFig3Download regenerates Figure 3: the 10-worker Redis-fed
// download job. Paper: 37 minutes for 246 GB / 112,249 files.
func BenchmarkFig3Download(b *testing.B) {
	var run *core.ConnectRun
	for i := 0; i < b.N; i++ {
		run = runPaperWorkflow(b, 0, true)
	}
	b.ReportMetric(run.StepDuration("1-download").Minutes(), "download-vmin")
	b.ReportMetric(run.BytesDownloaded.Value()/1e9, "GB")
	b.ReportMetric(float64(run.Config.Archive.NumFiles()), "files")
}

// BenchmarkFig4Network regenerates Figure 4: peak and mean network rates
// during the download. Paper: max 593 MB/s bursts, 246 GB/37 min sustained
// (~111 MB/s); the fluid model reports the sustained plateau.
func BenchmarkFig4Network(b *testing.B) {
	var peak, mean float64
	for i := 0; i < b.N; i++ {
		run := runPaperWorkflow(b, 0, true)
		ss := run.Eco.Metrics.Select("connect_download_rate_bytes", nil)
		if len(ss) == 0 {
			b.Fatal("no rate series")
		}
		for _, s := range ss[0].Samples {
			if s.Value > peak {
				peak = s.Value
			}
		}
		sum, n := 0.0, 0
		for _, s := range ss[0].Samples {
			if s.Value > 0 {
				sum += s.Value
				n++
			}
		}
		if n > 0 {
			mean = sum / float64(n)
		}
	}
	b.ReportMetric(peak/1e6, "peak-MBps")
	b.ReportMetric(mean/1e6, "mean-MBps")
}

// BenchmarkFig5Training regenerates Figure 5: data prep followed by FFN
// training on the 576x361x240 volume. Paper: 306 minutes total.
func BenchmarkFig5Training(b *testing.B) {
	var d time.Duration
	for i := 0; i < b.N; i++ {
		run := runPaperWorkflow(b, 200, true) // small archive; train is fixed-size
		d = run.StepDuration("2-train")
	}
	b.ReportMetric(d.Minutes(), "train-vmin")
}

// BenchmarkFig6Inference regenerates Figure 6: 50 single-GPU pods splitting
// 2.3e10 voxels. Paper: 1133 minutes.
func BenchmarkFig6Inference(b *testing.B) {
	var d time.Duration
	var maxGPU float64
	for i := 0; i < b.N; i++ {
		run := runPaperWorkflow(b, 0, true)
		d = run.StepDuration("3-inference")
		for _, s := range run.Eco.Metrics.Select("k8s_gpus_in_use", nil)[0].Samples {
			if s.Value > maxGPU {
				maxGPU = s.Value
			}
		}
	}
	b.ReportMetric(d.Minutes(), "infer-vmin")
	b.ReportMetric(maxGPU, "peak-gpus")
}

// BenchmarkAblationSubsetting is extension X4: whole-granule vs THREDDS
// variable subsetting. The paper reduces 455 GB to 246 GB (1.85x).
func BenchmarkAblationSubsetting(b *testing.B) {
	var sub, full time.Duration
	for i := 0; i < b.N; i++ {
		sub = runPaperWorkflow(b, 4000, true).StepDuration("1-download")
		full = runPaperWorkflow(b, 4000, false).StepDuration("1-download")
	}
	b.ReportMetric(sub.Seconds(), "subset-vsec")
	b.ReportMetric(full.Seconds(), "full-vsec")
	b.ReportMetric(float64(full)/float64(sub), "speedup")
}

// BenchmarkAblationInferenceGPUs is extension X3: inference-time scaling
// with GPU count, including the single-CPU MATLAB-era baseline.
func BenchmarkAblationInferenceGPUs(b *testing.B) {
	gpu := gpusim.GTX1080Ti()
	cpu := gpusim.SingleCPU()
	w := gpusim.Paper()
	var t50 time.Duration
	for i := 0; i < b.N; i++ {
		for _, g := range []int{1, 2, 5, 10, 25, 50, 100, 200} {
			d := gpu.ShardedInferTime(w.InferVoxels, g)
			if g == 50 {
				t50 = d
			}
		}
	}
	b.ReportMetric(t50.Minutes(), "gpus50-vmin")
	b.ReportMetric(gpu.ShardedInferTime(w.InferVoxels, 1).Hours(), "gpus1-vhours")
	b.ReportMetric(cpu.InferTime(w.InferVoxels).Hours(), "cpu-vhours")
}

// BenchmarkAblationDistTraining is extension X2 (Section III-E2):
// data-parallel distributed training speedups over a ReplicaSet.
func BenchmarkAblationDistTraining(b *testing.B) {
	m := gpusim.GTX1080Ti()
	cfg := gpusim.DefaultDistTrain()
	w := gpusim.Paper()
	var s8, s64 float64
	for i := 0; i < b.N; i++ {
		t1 := m.DistTrainTime(w.TrainVoxels, 1, cfg)
		s8 = gpusim.Speedup(t1, m.DistTrainTime(w.TrainVoxels, 8, cfg))
		s64 = gpusim.Speedup(t1, m.DistTrainTime(w.TrainVoxels, 64, cfg))
	}
	b.ReportMetric(s8, "speedup-8gpu")
	b.ReportMetric(s64, "speedup-64gpu")
}

// BenchmarkAblationPrepWorkers is extension X1 (Section III-E1):
// distributing the protobuf data-preparation step over k8s worker pods.
func BenchmarkAblationPrepWorkers(b *testing.B) {
	w := gpusim.Paper()
	m := gpusim.GTX1080Ti()
	var t1, t8 time.Duration
	for i := 0; i < b.N; i++ {
		for _, workers := range []int{1, 2, 4, 8, 16} {
			clk := sim.NewClock()
			cl := cluster.New(clk, nil)
			cl.CreateNamespace("prep", nil)
			for n := 0; n < 4; n++ {
				cl.AddNode(fmt.Sprintf("n%d", n), "site", cluster.FIONA8Capacity(), nil)
			}
			shard := w.TrainVoxels / float64(workers)
			job, err := cl.CreateJob(cluster.JobSpec{
				Name: "prep", Namespace: "prep", Parallelism: workers,
				Template: cluster.PodTemplate{
					Requests: cluster.Resources{CPU: 2, Memory: 4e9},
					Run: func(pc *cluster.PodCtx) {
						pc.After(m.PrepTime(shard), pc.Succeed)
					},
				},
			})
			if err != nil {
				b.Fatal(err)
			}
			clk.Run()
			if !job.Done() {
				b.Fatal("prep job incomplete")
			}
			switch workers {
			case 1:
				t1 = clk.Now()
			case 8:
				t8 = clk.Now()
			}
		}
	}
	b.ReportMetric(t1.Minutes(), "workers1-vmin")
	b.ReportMetric(t8.Minutes(), "workers8-vmin")
	b.ReportMetric(gpusim.Speedup(t1, t8), "speedup-8")
}

// BenchmarkAblationNodeFailure is extension X5 (Section V): download
// completion despite losing two busy nodes mid-run.
func BenchmarkAblationNodeFailure(b *testing.B) {
	var d time.Duration
	for i := 0; i < b.N; i++ {
		cfg := core.PaperConnectConfig()
		cfg.Archive = merra.MERRA2().Slice(8000)
		eco := core.BuildNautilus(core.DefaultNautilus())
		run, err := eco.NewConnectWorkflow(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := run.Workflow.Run(nil); err != nil {
			b.Fatal(err)
		}
		eco.Clock.RunFor(20 * time.Second)
		killed := 0
		for _, n := range eco.Cluster.Nodes() {
			if killed >= 2 {
				break
			}
			if n.Allocated().CPU > 0 {
				eco.Cluster.KillNode(n.Name)
				killed++
			}
		}
		eco.Clock.RunWhile(func() bool { return !run.Workflow.Done() })
		if run.Workflow.Failed() {
			b.Fatal("workflow failed under node loss")
		}
		d = run.StepDuration("1-download")
	}
	b.ReportMetric(d.Seconds(), "download-vsec")
}

// BenchmarkBaselineConnect is extension X6: the real CONNECT baseline vs the
// real FFN on identical synthetic volumes — actual wall-clock Go compute,
// not virtual time. Reports agreement (IoU of FFN mask vs threshold labels)
// and the two algorithms' object counts.
func BenchmarkBaselineConnect(b *testing.B) {
	g := merra.Grid{NLon: 36, NLat: 24, NLev: 6}
	gen := merra.NewGenerator(g, 11)
	levels := merra.PressureLevels(g.NLev)
	const steps = 6
	vol := merra.IVTVolume(gen, levels, 20, steps)
	flat := merra.Field2D{NLon: len(vol.Data), NLat: 1, Data: vol.Data}
	th := flat.Quantile(0.90)
	img := &ffn.Volume{D: steps, H: g.NLat, W: g.NLon, Data: append([]float32(nil), vol.Data...)}
	img.Normalize()
	lbl := ffn.NewVolume(steps, g.NLat, g.NLon)
	for i, v := range vol.Data {
		if v >= th {
			lbl.Data[i] = 1
		}
	}
	cfg := ffn.DefaultConfig()
	cfg.FOV = [3]int{3, 7, 7}
	cfg.Features = 6
	cfg.MoveStep = [3]int{1, 2, 2}
	net, err := ffn.NewNetwork(cfg, 3)
	if err != nil {
		b.Fatal(err)
	}
	tr := ffn.NewTrainer(net, 0.03, 0.9, 99)
	if _, err := tr.TrainOnVolume(img, lbl, 300); err != nil {
		b.Fatal(err)
	}
	seeds := ffn.GridSeeds(img, cfg.FOV, [3]int{1, 4, 4}, 1.0)

	var iou float64
	var connObjects, ffnObjects int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mask, _ := net.Segment(img, seeds, 0)
		res := connect.Label(connect.FromMask(steps, g.NLat, g.NLon, lbl.Data), connect.Conn26, 4)
		ffnRes := connect.Label(connect.FromMask(steps, g.NLat, g.NLon, mask.Data), connect.Conn26, 4)
		iou = ffn.IoU(mask, lbl)
		connObjects, ffnObjects = len(res.Objects), len(ffnRes.Objects)
	}
	b.ReportMetric(iou, "iou")
	b.ReportMetric(float64(connObjects), "connect-objects")
	b.ReportMetric(float64(ffnObjects), "ffn-objects")
}

// --- Substrate micro-benchmarks (real wall-clock, -benchmem) ----------------

// BenchmarkConv3DForward measures the pure-Go convolution kernel on an
// FFN-sized FOV, the unit of all real training/inference compute.
func BenchmarkConv3DForward(b *testing.B) {
	rng := sim.NewRNG(1)
	in := tensor.New(6, 3, 7, 7)
	w := tensor.New(6, 6, 3, 3, 3)
	w.Randomize(rng, 6*27)
	bias := make([]float32, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.Conv3D(in, w, bias)
	}
}

// BenchmarkConv3DInto measures the allocation-free convolution kernel
// writing into a reused output tensor: steady-state allocs/op must be 0.
func BenchmarkConv3DInto(b *testing.B) {
	rng := sim.NewRNG(1)
	in := tensor.New(6, 3, 7, 7)
	w := tensor.New(6, 6, 3, 3, 3)
	w.Randomize(rng, 6*27)
	bias := make([]float32, 6)
	out := tensor.New(6, 3, 7, 7)
	tensor.Conv3DInto(out, in, w, bias) // warm the task/waitgroup pools
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.Conv3DInto(out, in, w, bias)
	}
}

// BenchmarkSegmentWorkers measures flood-fill inference at several worker
// counts on one trained network (results are identical; only wall-clock
// changes).
func BenchmarkSegmentWorkers(b *testing.B) {
	g := merra.Grid{NLon: 36, NLat: 24, NLev: 6}
	gen := merra.NewGenerator(g, 11)
	levels := merra.PressureLevels(g.NLev)
	const steps = 6
	vol := merra.IVTVolume(gen, levels, 20, steps)
	img := &ffn.Volume{D: steps, H: g.NLat, W: g.NLon, Data: append([]float32(nil), vol.Data...)}
	img.Normalize()
	cfg := ffn.DefaultConfig()
	cfg.FOV = [3]int{3, 7, 7}
	cfg.Features = 6
	cfg.MoveStep = [3]int{1, 2, 2}
	net, err := ffn.NewNetwork(cfg, 3)
	if err != nil {
		b.Fatal(err)
	}
	seeds := ffn.GridSeeds(img, cfg.FOV, [3]int{1, 4, 4}, 1.0)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			prev := parallel.SetWorkers(workers)
			defer parallel.SetWorkers(prev)
			for i := 0; i < b.N; i++ {
				net.Segment(img, seeds, 0)
			}
		})
	}
}

// BenchmarkFFNTrainStep measures one real SGD step (forward + backward +
// update) on the experiment-scale network.
func BenchmarkFFNTrainStep(b *testing.B) {
	cfg := ffn.DefaultConfig()
	cfg.FOV = [3]int{3, 7, 7}
	cfg.Features = 6
	net, err := ffn.NewNetwork(cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	opt := tensor.NewSGD(0.01, 0.9)
	img := tensor.New(1, 3, 7, 7)
	lab := tensor.New(1, 3, 7, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.TrainStep(opt, img, lab)
	}
}

// BenchmarkConnectLabel measures the real CONNECT union-find labelling on a
// 16x64x64 volume with ~20% foreground.
func BenchmarkConnectLabel(b *testing.B) {
	rng := sim.NewRNG(2)
	v := connect.NewVolume(16, 64, 64)
	for i := range v.Data {
		if rng.Float64() < 0.2 {
			v.Data[i] = 1
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		connect.Label(v, connect.Conn26, 0)
	}
}

// BenchmarkIVTComputation measures the real vertical-integration kernel on a
// 96x64x16 grid.
func BenchmarkIVTComputation(b *testing.B) {
	g := merra.Grid{NLon: 96, NLat: 64, NLev: 16}
	gen := merra.NewGenerator(g, 3)
	st := gen.State(0)
	levels := merra.PressureLevels(g.NLev)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		merra.IVT(st, levels)
	}
}

// BenchmarkObjstorePut measures metadata-path object writes with 3x
// replication over 13 OSDs.
func BenchmarkObjstorePut(b *testing.B) {
	eco := core.BuildNautilus(core.DefaultNautilus())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eco.Storage.Put("bench", fmt.Sprintf("k-%d", i), 1e6, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNetsimFairShare measures the fluid-flow reallocation cost with
// 200 concurrent flows, the step-1 contention level.
func BenchmarkNetsimFairShare(b *testing.B) {
	for i := 0; i < b.N; i++ {
		clk := sim.NewClock()
		eco := core.BuildNautilus(core.DefaultNautilus())
		_ = clk
		for f := 0; f < 200; f++ {
			eco.Net.Transfer("thredds-dtn", "ucsd", 1e9, nil)
		}
		eco.Clock.Run()
	}
}

// BenchmarkQueueThroughput measures in-process queue push/pop pairs.
func BenchmarkQueueThroughput(b *testing.B) {
	s := core.BuildNautilus(core.DefaultNautilus()).Queue
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.LPush("q", "msg")
		s.RPop("q")
	}
}

// BenchmarkExtensionHPSweep is extension §III-E3: the Redis-fed
// hyperparameter sweep with held-out validation (real training per
// candidate).
func BenchmarkExtensionHPSweep(b *testing.B) {
	var best float64
	var vmin float64
	for i := 0; i < b.N; i++ {
		eco := core.BuildNautilus(core.DefaultNautilus())
		res, err := eco.RunHyperparameterSweep(core.DefaultSweep())
		if err != nil {
			b.Fatal(err)
		}
		best = res.Best.F1
		vmin = res.VirtualTime.Minutes()
	}
	b.ReportMetric(best, "best-F1")
	b.ReportMetric(vmin, "sweep-vmin")
}

// BenchmarkExtensionDistTrainingCluster is extension §III-E2 executed on the
// cluster (ReplicaSet + Service + real data-parallel SGD + WAN all-reduce),
// complementing the analytic model in BenchmarkAblationDistTraining.
func BenchmarkExtensionDistTrainingCluster(b *testing.B) {
	var finalLoss, commGB float64
	for i := 0; i < b.N; i++ {
		eco := core.BuildNautilus(core.DefaultNautilus())
		cfg := core.DefaultDistTrainConfig()
		cfg.Rounds = 30
		res, err := eco.RunDistributedTraining(cfg)
		if err != nil {
			b.Fatal(err)
		}
		finalLoss = res.FinalLoss()
		commGB = res.CommBytes / 1e9
	}
	b.ReportMetric(finalLoss, "final-loss")
	b.ReportMetric(commGB, "allreduce-GB")
}

// BenchmarkExtensionCAVERender is extension §III-E4: the tiled SunCAVE wall
// render fanned across labeled GPU nodes.
func BenchmarkExtensionCAVERender(b *testing.B) {
	var tiles, nodes float64
	var vsec float64
	for i := 0; i < b.N; i++ {
		eco := core.BuildNautilus(core.DefaultNautilus())
		res, err := eco.RunCAVERender(core.DefaultCAVE())
		if err != nil {
			b.Fatal(err)
		}
		tiles = float64(res.Tiles)
		nodes = float64(res.NodesUsed)
		vsec = res.VirtualTime.Seconds()
	}
	b.ReportMetric(tiles, "tiles")
	b.ReportMetric(nodes, "nodes")
	b.ReportMetric(vsec, "render-vsec")
}

// BenchmarkAblationScienceDMZ measures download slowdown under heavy
// background tenant traffic: the Science DMZ overprovisioning claim.
func BenchmarkAblationScienceDMZ(b *testing.B) {
	run := func(load bool) time.Duration {
		eco := core.BuildNautilus(core.DefaultNautilus())
		if load {
			eco.Net.StartLoad("ucsd", "calit2", 20, 1e12)
			eco.Net.StartLoad("sdsc", "ucmerced", 20, 1e12)
		}
		cfg := core.PaperConnectConfig()
		cfg.Archive = merra.MERRA2().Slice(4000)
		r, err := eco.NewConnectWorkflow(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Workflow.Run(nil); err != nil {
			b.Fatal(err)
		}
		eco.Clock.RunWhile(func() bool {
			return r.Workflow.Status("1-download").String() != "Succeeded"
		})
		return r.StepDuration("1-download")
	}
	var quiet, busy time.Duration
	for i := 0; i < b.N; i++ {
		quiet = run(false)
		busy = run(true)
	}
	b.ReportMetric(quiet.Seconds(), "quiet-vsec")
	b.ReportMetric(busy.Seconds(), "busy-vsec")
	b.ReportMetric(float64(busy)/float64(quiet), "slowdown")
}

// BenchmarkAblationEnergy quantifies the paper's opening energy-efficiency
// motivation: total board energy to run the step-3 inference workload on
// the 1080ti fleet, the single-CPU baseline, and an NvN accelerator fleet.
func BenchmarkAblationEnergy(b *testing.B) {
	w := gpusim.Paper()
	var gpuKWh, cpuKWh, nvnKWh float64
	for i := 0; i < b.N; i++ {
		gpuKWh = gpusim.KWh(gpusim.Powered1080Ti().InferEnergyJoules(w.InferVoxels, 50))
		cpuKWh = gpusim.KWh(gpusim.PoweredCPU().InferEnergyJoules(w.InferVoxels, 1))
		nvnKWh = gpusim.KWh(gpusim.NvN().InferEnergyJoules(w.InferVoxels, 50))
	}
	b.ReportMetric(gpuKWh, "gpu50-kWh")
	b.ReportMetric(cpuKWh, "cpu1-kWh")
	b.ReportMetric(nvnKWh, "nvn50-kWh")
}
