// Failover: Section V's claim — "if a node is taken offline the pods on
// that node will be rescheduled on another node" — exercised against the
// case-study workflow. The example starts the download step, kills nodes
// hosting busy workers mid-run, and shows that the Job controller respawns
// pods, the Redis messages they were processing are re-queued, and the
// workflow still lands every byte.
package main

import (
	"fmt"
	"log"
	"time"

	"chaseci/internal/core"
	"chaseci/internal/merra"
)

func main() {
	eco := core.BuildNautilus(core.DefaultNautilus())
	cfg := core.PaperConnectConfig()
	cfg.Archive = merra.MERRA2().Slice(6000)
	run, err := eco.NewConnectWorkflow(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := run.Workflow.Run(nil); err != nil {
		log.Fatal(err)
	}

	// Let the download establish itself, then kill two busy nodes.
	eco.Clock.RunFor(15 * time.Second)
	killed := []string{}
	for _, n := range eco.Cluster.Nodes() {
		if len(killed) >= 2 {
			break
		}
		if n.Allocated().CPU > 0 {
			eco.Cluster.KillNode(n.Name)
			killed = append(killed, n.Name)
		}
	}
	fmt.Printf("killed nodes mid-download: %v\n", killed)

	// Bring one back later, as a repaired machine rejoining would.
	eco.Clock.After(2*time.Minute, func() {
		eco.Cluster.RestoreNode(killed[0])
		fmt.Printf("restored %s at t=%v\n", killed[0], eco.Clock.Now().Round(time.Second))
	})

	eco.Clock.RunWhile(func() bool { return !run.Workflow.Done() })
	if run.Workflow.Failed() {
		log.Fatal("workflow failed — self-healing broke")
	}

	want := cfg.Archive.TotalBytes(true)
	stored := eco.Storage.BucketSize("connect-data")
	fmt.Printf("workflow completed in %v of cluster time\n", eco.Clock.Now().Round(time.Second))
	fmt.Printf("archive bytes expected %.2f GB, stored %.2f GB (every message exactly once)\n",
		want/1e9, stored/1e9)

	// Show the orchestration events that made it work.
	fmt.Println("\nself-healing events:")
	for _, e := range eco.Cluster.Events() {
		switch e.Kind {
		case "NodeLost", "NodeReady", "JobPodEvicted":
			fmt.Printf("  %8v %-14s %s\n", e.At.Round(time.Second), e.Kind, e.Object)
		}
	}

	// Count respawned pods.
	respawns := 0
	for _, e := range eco.Cluster.Events() {
		if e.Kind == "JobPodEvicted" {
			respawns++
		}
	}
	fmt.Printf("\n%d pods were evicted by node loss and respawned elsewhere\n", respawns)
}
