// Quickstart: boot a simulated CHASE-CI (Nautilus) cluster, authenticate a
// researcher through the CILogon-style federation, create a namespace, run a
// small GPU batch job, and read the monitoring data back — the minimal tour
// of the public API.
package main

import (
	"fmt"
	"log"
	"time"

	"chaseci/internal/cluster"
	"chaseci/internal/core"
)

func main() {
	// 1. Build the ecosystem: nodes, storage, WAN, monitoring, auth.
	eco := core.BuildNautilus(core.DefaultNautilus())
	fmt.Printf("cluster up: %d GPUs across %d sites, %.1f PB storage\n",
		eco.TotalGPUs(), len(eco.Config.Sites), eco.StorageBytes()/1e15)

	// 2. Authenticate via the identity federation and claim a namespace.
	token, err := eco.Auth.Login("researcher@ucsd.edu")
	if err != nil {
		log.Fatal(err)
	}
	id, err := eco.Auth.Validate(token)
	if err != nil {
		log.Fatal(err)
	}
	ns, err := eco.Cluster.CreateNamespace("quickstart", &cluster.Resources{
		CPU: 16, Memory: cluster.GB(64), GPUs: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	ns.GrantAdmin(id.User)
	fmt.Printf("namespace %q created, admin %s\n", ns.Name, id.User)

	// 3. Submit a batch Job: 4 pods, 2 GPUs each, ~30 virtual minutes.
	job, err := eco.Cluster.CreateJob(cluster.JobSpec{
		Name: "hello-gpu", Namespace: "quickstart",
		Parallelism: 4,
		Template: cluster.PodTemplate{
			Requests: cluster.Resources{CPU: 2, Memory: cluster.GB(8), GPUs: 2},
			Run: func(pc *cluster.PodCtx) {
				fmt.Printf("  pod %d running on %s\n", pc.Index(), pc.NodeName())
				pc.After(30*time.Minute, pc.Succeed)
			},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Drive virtual time to completion.
	eco.Clock.Run()
	fmt.Printf("job done=%v after %v of cluster time\n", job.Done(), eco.Clock.Now())

	// 5. Read monitoring data back, Grafana-style.
	for _, s := range eco.Metrics.Select("k8s_gpus_in_use", nil) {
		peak := 0.0
		for _, smp := range s.Samples {
			if smp.Value > peak {
				peak = smp.Value
			}
		}
		fmt.Printf("peak GPUs in use: %.0f\n", peak)
	}

	// 6. Store a result in the Ceph object store and read it back.
	mount := eco.Storage.MountBucket("quickstart")
	if err := mount.WriteFile("results/summary.txt", []byte("4 pods x 2 GPUs x 30m")); err != nil {
		log.Fatal(err)
	}
	data, err := mount.ReadFile("results/summary.txt")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored result: %s\n", data)
}
