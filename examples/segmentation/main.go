// Segmentation: the real-compute pipeline of the case study, end to end and
// over real sockets — a THREDDS HTTP server serves synthetic MERRA-2
// granules, a Redis-protocol queue distributes the URL list, an aria2-style
// parallel client downloads IVT subsets, a pure-Go Flood-Filling Network
// trains and segments the volume, and the CONNECT baseline cross-checks the
// result. Everything here is actual computation and actual network I/O on
// localhost; no virtual time.
package main

import (
	"context"
	"fmt"
	"log"

	"chaseci/internal/connect"
	"chaseci/internal/ffn"
	"chaseci/internal/merra"
	"chaseci/internal/queue"
	"chaseci/internal/thredds"
	"chaseci/internal/viz"
)

func main() {
	grid := merra.Grid{NLon: 36, NLat: 24, NLev: 6}
	const granules = 12
	const timeSteps = 6

	// --- Step 1: THREDDS download through a Redis work queue -------------
	spec := merra.MERRA2().Slice(granules)
	catalog := thredds.NewCatalog(spec, merra.NewGenerator(grid, 11))
	srv, err := thredds.Serve(catalog, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	qsrv, err := queue.Serve(queue.NewStore(), "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer qsrv.Close()
	qc, err := queue.Dial(qsrv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer qc.Close()
	for i := 0; i < granules; i++ {
		if _, err := qc.LPush("urls", srv.SubsetURL(spec.FileName(i), "IVT")); err != nil {
			log.Fatal(err)
		}
	}

	var urls []string
	for {
		u, err := qc.RPop("urls")
		if err == queue.ErrNil {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		urls = append(urls, u)
	}
	dl := &thredds.Downloader{Parallel: 4}
	subsets := make(map[string][]byte)
	results, total := dl.Fetch(context.Background(), urls, func(url string, body []byte) { subsets[url] = body })
	for _, r := range results {
		if r.Err != nil {
			log.Fatalf("download %s: %v", r.URL, r.Err)
		}
	}
	fmt.Printf("step 1: downloaded %d IVT subsets (%d bytes) over HTTP via the queue\n",
		len(subsets), total)

	// --- Step 2: build the training volume and train the FFN -------------
	gen := merra.NewGenerator(grid, 11)
	levels := merra.PressureLevels(grid.NLev)
	vol := merra.IVTVolume(gen, levels, 20, timeSteps)
	flat := merra.Field2D{NLon: len(vol.Data), NLat: 1, Data: vol.Data}
	threshold := flat.Quantile(0.90)
	img := &ffn.Volume{D: timeSteps, H: grid.NLat, W: grid.NLon,
		Data: append([]float32(nil), vol.Data...)}
	img.Normalize()
	labels := ffn.NewVolume(timeSteps, grid.NLat, grid.NLon)
	for i, v := range vol.Data {
		if v >= threshold {
			labels.Data[i] = 1
		}
	}

	cfg := ffn.DefaultConfig()
	cfg.FOV = [3]int{3, 7, 7}
	cfg.Features = 6
	cfg.MoveStep = [3]int{1, 2, 2}
	net, err := ffn.NewNetwork(cfg, 3)
	if err != nil {
		log.Fatal(err)
	}
	trainer := ffn.NewTrainer(net, 0.03, 0.9, 99)
	losses, err := trainer.TrainOnVolume(img, labels, 400)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("step 2: trained FFN (%d params), loss %.3f -> %.3f\n",
		net.ParamCount(), ffn.MeanTail(losses[:50], 1), ffn.MeanTail(losses, 0.2))

	// --- Step 3: flood-fill inference ------------------------------------
	seeds := ffn.GridSeeds(img, cfg.FOV, [3]int{1, 4, 4}, 1.0)
	mask, stats := net.Segment(img, seeds, 0)
	fmt.Printf("step 3: segmented %d voxels in %d network steps from %d seeds\n",
		stats.MaskVoxels, stats.Steps, stats.SeedsUsed)

	// --- Step 4: validate, compare against CONNECT, visualize ------------
	fmt.Println("step 4: validation")
	fmt.Print(viz.SegmentationReport(mask, labels))

	ffnObjects := connect.Label(connect.FromMask(timeSteps, grid.NLat, grid.NLon, mask.Data), connect.Conn26, 4)
	refObjects := connect.Label(connect.FromMask(timeSteps, grid.NLat, grid.NLon, labels.Data), connect.Conn26, 4)
	fmt.Printf("\nCONNECT life-cycle tracking on the reference labels:\n%s",
		viz.ObjectReport(refObjects))
	fmt.Printf("FFN mask yields %d objects; reference labels yield %d\n",
		len(ffnObjects.Objects), len(refObjects.Objects))

	fmt.Println("\nIVT field at t=0 (ASCII preview):")
	fmt.Print(viz.ASCIISlice(viz.VolumeSlice(img, 0), grid.NLat, grid.NLon, 72))
}
