// Scaling: the Section III-C / III-E experiments — how inference time
// scales with GPU count ("the number of GPUs in this section can scale to
// any number"), how distributed data-parallel training would scale over a
// ReplicaSet (Section III-E2), and how distributed pre-processing would
// scale (Section III-E1). All timings are virtual cluster time from the
// calibrated 1080ti model.
package main

import (
	"fmt"
	"time"

	"chaseci/internal/gpusim"
)

func main() {
	gpu := gpusim.GTX1080Ti()
	cpu := gpusim.SingleCPU()
	w := gpusim.Paper()

	fmt.Println("inference scaling: 2.3e10 voxels of MERRA-2 IVT (paper: 50 GPUs, 1133 min)")
	fmt.Printf("  %-10s %16s %10s %12s\n", "platform", "time", "speedup", "efficiency")
	t1 := gpu.ShardedInferTime(w.InferVoxels, 1)
	for _, g := range []int{1, 2, 5, 10, 25, 50, 100, 200} {
		tg := gpu.ShardedInferTime(w.InferVoxels, g)
		s := gpusim.Speedup(t1, tg)
		fmt.Printf("  %3d GPUs   %16v %9.1fx %11.0f%%\n",
			g, tg.Round(time.Minute), s, s/float64(g)*100)
	}
	fmt.Printf("  %-10s %16v %10s (the MATLAB-era single-CPU workflow)\n",
		"1 CPU", cpu.InferTime(w.InferVoxels).Round(time.Hour), "-")

	fmt.Println("\ndistributed training (Section III-E2): data-parallel SGD over a ReplicaSet")
	cfg := gpusim.DefaultDistTrain()
	fmt.Printf("  model %0.f MB, %0.f syncs/volume, %.0f Gbps interconnect\n",
		cfg.ParamBytes/1e6, cfg.SyncsPerVolume, cfg.InterconnectBytesPerSec*8/1e9)
	fmt.Printf("  %-10s %16s %10s\n", "workers", "time", "speedup")
	tt1 := gpu.DistTrainTime(w.TrainVoxels, 1, cfg)
	for _, g := range []int{1, 2, 4, 8, 16, 32, 64} {
		tg := gpu.DistTrainTime(w.TrainVoxels, g, cfg)
		fmt.Printf("  %-10d %16v %9.1fx\n", g, tg.Round(time.Minute), gpusim.Speedup(tt1, tg))
	}

	fmt.Println("\ndistributed pre-processing (Section III-E1): protobuf build over worker pods")
	fmt.Printf("  %-10s %16s %10s\n", "workers", "time", "speedup")
	p1 := gpu.PrepTime(w.TrainVoxels)
	for _, g := range []int{1, 2, 4, 8, 16} {
		tg := gpu.PrepTime(w.TrainVoxels / float64(g))
		fmt.Printf("  %-10d %16v %9.1fx\n", g, tg.Round(time.Second), gpusim.Speedup(p1, tg))
	}
}
